package deltasigma

import (
	"fmt"
	"sort"

	"deltasigma/internal/invariant"
	"deltasigma/internal/mcast"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
)

// Violation is one detected invariant breach — a typed, serializable
// diagnostic (see internal/invariant for the rules and why they hold).
type Violation = invariant.Violation

// auditSettings accumulates the WithAudit sub-options.
type auditSettings struct {
	enabled  bool
	interval Time
	limit    int
	oracles  []SuppressionOracle
}

// AuditOption configures the audit layer inside WithAudit.
type AuditOption func(*auditSettings)

// WithAudit attaches the invariant-audit layer to the experiment: the
// conservation laws (link packet conservation, the capacity-integral
// utilization bound, queue occupancy, clock monotonicity, gatekeeper/graft
// consistency, subscription-level bounds and — after StopTraffic and a
// drain — pool balance and empty links) are checked at the end of the run
// via Audit().Finish, and periodically during it when AuditEvery is given.
//
// With no WithAudit option nothing is allocated and the hot path is
// untouched: auditing disabled costs zero allocations per operation.
func WithAudit(opts ...AuditOption) Option {
	return func(s *settings) {
		s.audit.enabled = true
		for _, o := range opts {
			o(&s.audit)
		}
	}
}

// AuditEvery turns on during-run auditing: the full instantaneous rule set
// runs every d of virtual time on the experiment's scheduler.
func AuditEvery(d Time) AuditOption {
	return func(a *auditSettings) {
		if d <= 0 {
			panic(fmt.Sprintf("deltasigma: AuditEvery(%v) must be positive", d))
		}
		a.interval = d
	}
}

// AuditLimit caps how many violations are recorded (detection keeps
// counting past the cap). The default is invariant.DefaultLimit.
func AuditLimit(n int) AuditOption {
	return func(a *auditSettings) { a.limit = n }
}

// AuditSuppression arms the protocol oracle for the run (see
// SuppressionOracle). Repeated options accumulate.
func AuditSuppression(o SuppressionOracle) AuditOption {
	return func(a *auditSettings) { a.oracles = append(a.oracles, o) }
}

// SuppressionOracle is the paper's core claim as a checkable invariant:
// once the protection has had time to converge on an inflated-subscription
// attacker, the attacker's delivered throughput stays at or below the
// honest receivers' median share. The oracle is evaluated by Audit().Finish
// over [From, stop-of-traffic): From must sit past the attack onset plus a
// convergence allowance, and the window is only meaningful for protected
// protocol variants on sessions whose honest receivers stay subscribed —
// the caller (the fuzzer's generator, a test) decides eligibility.
type SuppressionOracle struct {
	// Session selects one session (1-based); 0 means every session that
	// contains at least one attacker and one honest receiver.
	Session int
	// From is the start of the measurement window.
	From Time
	// Factor scales the honest median the attacker must stay below
	// (0 = 1.0; the attacker keeps its entitled share, so exactly the
	// honest median is the theoretical ceiling for a suppressed attacker).
	Factor float64
	// FloorKbps is an absolute grace floor added to the bound, so an
	// all-but-starved session does not flag noise-level attacker traffic.
	FloorKbps float64
}

// Audit is the runtime audit attached by WithAudit. Access it with
// Experiment.Audit; read violations any time with Violations, and run the
// end-of-run rules with Finish.
type Audit struct {
	exp     *Experiment
	cfg     auditSettings
	aud     invariant.Auditor
	lastNow Time
	timer   *sim.Timer
}

func newAudit(e *Experiment, cfg auditSettings) *Audit {
	a := &Audit{exp: e, cfg: cfg}
	a.aud.Limit = cfg.limit
	return a
}

// Audit returns the audit layer, or nil when the experiment was built
// without WithAudit.
func (e *Experiment) Audit() *Audit { return e.audit }

// install arms the during-run sampler; called from Experiment.Start.
func (a *Audit) install(sched *sim.Scheduler) {
	a.lastNow = sched.Now()
	if a.cfg.interval <= 0 {
		return
	}
	a.timer = sched.NewTimer(func() {
		a.Check()
		a.timer.Reset(a.cfg.interval)
	})
	a.timer.Reset(a.cfg.interval)
}

// Violations returns every violation recorded so far, in detection order.
func (a *Audit) Violations() []Violation { return a.aud.Violations() }

// Err returns nil when the audit is clean so far, or an error describing
// the recorded violations.
func (a *Audit) Err() error { return a.aud.Err() }

// groups lists every session's group addresses, in session order.
func (e *Experiment) groups() []packet.Addr {
	var out []packet.Addr
	for _, s := range e.sessions {
		out = append(out, s.Sess.Addrs()...)
	}
	return out
}

// Check runs the instantaneous rule set now: clock monotonicity, per-link
// conservation/utilization/occupancy on every link of the topology,
// gatekeeper-versus-graft consistency at every edge, and subscription-level
// bounds for every receiver. The periodic sampler calls this; callers can
// too, at any point of a run.
func (a *Audit) Check() {
	e := a.exp
	now := e.Now()
	a.aud.CheckMonotonicTime(&a.lastNow, now)
	for _, l := range e.Topo.Network().Links() {
		a.aud.CheckLink(now, l)
	}
	edges := e.Topo.Edges()
	if ce := e.cohortEdges(); len(ce) > 0 {
		edges = append(append([]*mcast.Router(nil), edges...), ce...)
	}
	a.aud.CheckGraftConsistency(now, e.Topo.Multicast(), edges, e.groups())
	for _, s := range e.sessions {
		n := s.Sess.Rates.N
		for _, r := range s.Receivers {
			if lvl := r.Level(); lvl < 0 || lvl > n {
				a.aud.Reportf(invariant.RuleLevelBounds, r.Label(), now,
					float64(lvl), float64(n),
					"subscription level %d outside 0..%d", lvl, n)
			}
		}
		for _, c := range s.Cohorts {
			if lvl := c.Level(); lvl < 0 || lvl > n {
				a.aud.Reportf(invariant.RuleLevelBounds, c.Label(), now,
					float64(lvl), float64(n),
					"subscription level %d outside 0..%d", lvl, n)
			}
			if got := c.Agent().Accounted(); got != c.Members() {
				a.aud.Reportf(invariant.RuleCohortConservation, c.Label(), now,
					float64(got), float64(c.Members()),
					"online+offline members %d != configured %d", got, c.Members())
			}
		}
	}
}

// Finish runs the end-of-run rules and returns every violation of the run.
// Call it after StopTraffic and a drain grace (see DrainAndAudit for the
// packaged sequence): on top of a final Check it asserts pool balance —
// every pooled packet reference issued since the experiment was built came
// back — and that no link still holds packets, then evaluates any armed
// suppression oracles over [oracle.From, stop-of-traffic).
func (a *Audit) Finish() []Violation {
	e := a.exp
	now := e.Now()
	a.Check()
	a.aud.CheckPoolBalance(now, e.Topo.Network().Pool(), e.poolBase)
	// Sharded runs mint from per-shard pools; each must close independently
	// (the cut hand-off copies between pools, never moves ownership across).
	for _, p := range e.shardPoolTail() {
		a.aud.CheckPoolBalance(now, p, 0)
	}
	for _, l := range e.Topo.Network().Links() {
		a.aud.CheckLinkDrained(now, l)
	}
	until := e.stoppedAt
	if until == 0 {
		until = now
	}
	for _, o := range a.cfg.oracles {
		a.checkOracle(o, until)
	}
	return a.aud.Violations()
}

// checkOracle evaluates one suppression oracle over [o.From, until).
func (a *Audit) checkOracle(o SuppressionOracle, until Time) {
	e := a.exp
	if o.From >= until {
		a.aud.Reportf(invariant.RuleOracleWindow, "", until,
			o.From.Sec(), until.Sec(),
			"oracle window [%v,%v) is empty — the run never reached the convergence point", o.From, until)
		return
	}
	for _, s := range e.sessions {
		if o.Session != 0 && s.index != o.Session {
			continue
		}
		honest, attackers := sessionRates(s, o.From, until)
		if len(attackers) == 0 || len(honest) == 0 {
			continue // the oracle needs both populations to compare
		}
		sort.Float64s(honest)
		median := stats.PercentileSorted(honest, 0.5)
		factor := o.Factor
		if factor <= 0 {
			factor = 1
		}
		bound := median*factor + o.FloorKbps
		for _, r := range attackers {
			if got := r.Meter().AvgKbps(o.From, until); got > bound {
				a.aud.Reportf(invariant.RuleSuppressionOracle, r.Label(), until, got, bound,
					"attacker averaged %.1f Kbps over [%v,%v), above the suppression bound %.1f (honest median %.1f × %.2f + floor %.1f)",
					got, o.From, until, bound, median, factor, o.FloorKbps)
			}
		}
	}
}

// sessionRates gathers one session's throughput samples over [from, until):
// every honest receiver's average in Kbps — cohorts contribute their
// per-member average as one sample, since members are homogeneous and one
// sample is the population's share — plus the attacker receivers
// themselves, for callers that need per-attacker rates. Shared by the
// suppression oracle and the attacker-advantage fitness measurement, so
// the hunt optimizer maximizes exactly what the oracle bounds.
func sessionRates(s *ExperimentSession, from, until Time) (honest []float64, attackers []*Receiver) {
	for _, r := range s.Receivers {
		if r.Attacker() {
			attackers = append(attackers, r)
		} else {
			honest = append(honest, r.Meter().AvgKbps(from, until))
		}
	}
	for _, c := range s.Cohorts {
		honest = append(honest, c.Meter().AvgKbps(from, until)/float64(c.Members()))
	}
	return honest, attackers
}

// ---------------------------------------------------------------------------
// Drain plumbing shared by the audit layer, the fuzzer and the test suite.

// Pool returns the experiment's packet pool: the injected one under
// WithPacketPool, otherwise the network's own.
func (e *Experiment) Pool() *PacketPool { return e.Topo.Network().Pool() }

// StopTraffic stops every traffic source so the network can drain: churn
// generators go quiet, every session sender and receiver stops (attackers
// are deflated first, so inflation joins are withdrawn rather than left
// pinning the distribution tree), and TCP/CBR cross traffic halts. Packets
// already queued or in flight terminate normally. Timeline events scripted
// past the stop point still fire — stop after the scripted window when a
// drained network is the goal. Idempotent; the first call records the
// stop time as the end of the measurement window for audit oracles.
func (e *Experiment) StopTraffic() {
	e.Start()
	for _, c := range e.churns {
		c.Stop()
	}
	for _, s := range e.sessions {
		s.Sender.Stop()
		for _, r := range s.Receivers {
			if r.Attacker() {
				r.Deflate()
			}
			r.Stop()
		}
		for _, c := range s.Cohorts {
			c.Stop()
		}
	}
	for _, f := range e.tcps {
		f.Stop()
	}
	for _, c := range e.cbrs {
		c.Stop()
	}
	if e.stoppedAt == 0 {
		e.stoppedAt = e.Now()
	}
}

// CheckDrained runs the post-drain structural invariants without requiring
// WithAudit: pool balance against the experiment's baseline, per-link
// conservation, and link emptiness. It returns the violations found — the
// facade test suite's shared leak check is built on this.
func (e *Experiment) CheckDrained() []Violation {
	var aud invariant.Auditor
	now := e.Now()
	aud.CheckPoolBalance(now, e.Pool(), e.poolBase)
	for _, p := range e.shardPoolTail() {
		aud.CheckPoolBalance(now, p, 0)
	}
	for _, l := range e.Topo.Network().Links() {
		aud.CheckLink(now, l)
		aud.CheckLinkDrained(now, l)
	}
	return aud.Violations()
}

// shardPoolTail returns the packet pools of shards 1..n-1 (empty for serial
// runs); shard 0's pool is the network's main pool, audited against
// poolBase separately.
func (e *Experiment) shardPoolTail() []*PacketPool {
	pools := e.Topo.Network().ShardPools()
	if len(pools) < 2 {
		return nil
	}
	return pools[1:]
}

// DrainAndAudit is the packaged end-of-run sequence: stop all traffic, let
// the network drain for grace of virtual time, then run the full final
// audit. With WithAudit enabled it returns Audit().Finish; otherwise it
// returns the structural CheckDrained violations.
func (e *Experiment) DrainAndAudit(grace Time) []Violation {
	e.StopTraffic()
	e.Advance(e.Now() + grace)
	if e.audit != nil {
		return e.audit.Finish()
	}
	return e.CheckDrained()
}
