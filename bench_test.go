// Package-level benchmarks: one per figure of the paper's evaluation (the
// harness that regenerates each experiment, at reduced scale so -bench
// completes quickly; run cmd/figures for paper-length output), plus
// microbenchmarks of the DELTA/SIGMA hot paths.
package deltasigma_test

import (
	"testing"

	"deltasigma"
	"deltasigma/internal/scenario"
)

// benchOptions shrinks experiments so each iteration is ~a second of CPU.
func benchOptions() scenario.Options {
	return scenario.Options{Scale: 0.25, Seed: 2003}
}

func benchFigure(b *testing.B, run func(scenario.Options) *scenario.Result) {
	b.Helper()
	// Allocation counts are a tracked metric of the zero-allocation hot
	// path (see BENCH_pr3.json for the recorded trajectory).
	b.ReportAllocs()
	// One fixed seed for every iteration: each run is identical work, so
	// ns/op is stable and comparable across benchmark invocations.
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res := run(opt)
		if len(res.Series) == 0 && len(res.Curves) == 0 {
			b.Fatal("figure produced no data")
		}
	}
}

// BenchmarkFig01InflatedSubscription regenerates Figure 1: the attack under
// plain FLID-DL.
func BenchmarkFig01InflatedSubscription(b *testing.B) { benchFigure(b, scenario.Fig1) }

// BenchmarkFig07Protection regenerates Figure 7: the same attack defeated
// by DELTA+SIGMA.
func BenchmarkFig07Protection(b *testing.B) { benchFigure(b, scenario.Fig7) }

// BenchmarkFig08aThroughputDL regenerates Figure 8(a).
func BenchmarkFig08aThroughputDL(b *testing.B) { benchFigure(b, scenario.Fig8a) }

// BenchmarkFig08bThroughputDS regenerates Figure 8(b).
func BenchmarkFig08bThroughputDS(b *testing.B) { benchFigure(b, scenario.Fig8b) }

// BenchmarkFig08cAverageNoCross regenerates Figure 8(c).
func BenchmarkFig08cAverageNoCross(b *testing.B) { benchFigure(b, scenario.Fig8c) }

// BenchmarkFig08dAverageCross regenerates Figure 8(d).
func BenchmarkFig08dAverageCross(b *testing.B) { benchFigure(b, scenario.Fig8d) }

// BenchmarkFig08eResponsiveness regenerates Figure 8(e).
func BenchmarkFig08eResponsiveness(b *testing.B) { benchFigure(b, scenario.Fig8e) }

// BenchmarkFig08fHeterogeneousRTT regenerates Figure 8(f).
func BenchmarkFig08fHeterogeneousRTT(b *testing.B) { benchFigure(b, scenario.Fig8f) }

// BenchmarkFig08gConvergenceDL regenerates Figure 8(g).
func BenchmarkFig08gConvergenceDL(b *testing.B) { benchFigure(b, scenario.Fig8g) }

// BenchmarkFig08hConvergenceDS regenerates Figure 8(h).
func BenchmarkFig08hConvergenceDS(b *testing.B) { benchFigure(b, scenario.Fig8h) }

// BenchmarkFig09aOverheadGroups regenerates Figure 9(a).
func BenchmarkFig09aOverheadGroups(b *testing.B) { benchFigure(b, scenario.Fig9a) }

// BenchmarkFig09bOverheadSlot regenerates Figure 9(b).
func BenchmarkFig09bOverheadSlot(b *testing.B) { benchFigure(b, scenario.Fig9b) }

// BenchmarkProtectedSessionSecond measures end-to-end simulator throughput:
// one protected session, one simulated second per iteration.
func BenchmarkProtectedSessionSecond(b *testing.B) {
	exp := deltasigma.MustNew(
		deltasigma.WithDumbbell(500_000),
		deltasigma.WithProtocol("flid-ds"),
		deltasigma.WithSeed(9),
	)
	exp.AddSession(2)
	exp.Start()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Advance(deltasigma.Time(i+1) * deltasigma.Second)
	}
}

// BenchmarkCohort1M measures the cohort fluid model at headline scale: one
// million receivers aggregated into a single cohort, one simulated second
// per iteration, under hierarchical feedback consolidation. Per-slot cost
// is O(groups + buckets), so this should run within a small constant of
// BenchmarkProtectedSessionSecond despite a 10^6× larger population.
func BenchmarkCohort1M(b *testing.B) {
	exp := deltasigma.MustNew(
		deltasigma.WithDumbbell(500_000),
		deltasigma.WithProtocol("flid-ds"),
		deltasigma.WithSeed(9),
	)
	exp.AddSession(0).AddCohort(1_000_000)
	exp.Start()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Advance(deltasigma.Time(i+1) * deltasigma.Second)
	}
}

// benchShardFanout is the dense fan-out the sharded engine targets: one
// protected session fanning out to 128 receivers with heterogeneous access
// delays on an 8 Mbps dumbbell, one simulated second per iteration. Most
// events are per-receiver work (access-link deliveries, FLID timers, SIGMA
// exchanges), so it parallelizes where the two-receiver figure scenarios —
// dominated by shard 0's shared bottleneck — cannot.
func benchShardFanout(b *testing.B, shards int) {
	b.Helper()
	exp := deltasigma.MustNew(
		deltasigma.WithDumbbell(8_000_000),
		deltasigma.WithProtocol("flid-ds"),
		deltasigma.WithSeed(9),
		deltasigma.WithShards(shards),
	)
	sess := exp.AddSession(0)
	for i := 0; i < 256; i++ {
		sess.AddReceiverDelay(deltasigma.Time(20+i%41) * deltasigma.Millisecond)
	}
	exp.Start()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Advance(deltasigma.Time(i+1) * deltasigma.Second)
	}
}

// BenchmarkShardFanoutSerial runs the fan-out on the serial engine — the
// baseline the sharded rows are measured against.
func BenchmarkShardFanoutSerial(b *testing.B) { benchShardFanout(b, 1) }

// BenchmarkShardFanoutSharded runs the same fan-out under WithShards(0):
// auto-sharded from GOMAXPROCS, so the -cpu=1,4,8 rows form the scaling
// table (the -cpu=1 row degenerates to serial).
func BenchmarkShardFanoutSharded(b *testing.B) { benchShardFanout(b, 0) }

// benchSweep is the campaign grid the sweep benchmarks share: 2 protocols
// × 2 receiver counts × 2 attacker counts = 8 independent points.
func benchSweep() deltasigma.Sweep {
	return deltasigma.Sweep{
		Name:      "bench",
		Protocols: []string{"flid-dl", "flid-ds"},
		Receivers: []int{1, 2},
		Attackers: []int{0, 1},
		Duration:  4 * deltasigma.Second,
		Seeds:     []uint64{2003},
	}
}

func benchSweepWorkers(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	sw := benchSweep()
	for i := 0; i < b.N; i++ {
		res, err := sw.Run(workers)
		if err != nil {
			b.Fatal(err)
		}
		if res.Failures != 0 {
			b.Fatalf("%d points failed", res.Failures)
		}
	}
}

// BenchmarkSweepSerial runs the campaign grid on a single worker — the
// baseline the parallel pool is measured against.
func BenchmarkSweepSerial(b *testing.B) { benchSweepWorkers(b, 1) }

// BenchmarkSweepParallel runs the same grid with one worker per CPU; the
// speedup over BenchmarkSweepSerial is the campaign layer's payoff.
func BenchmarkSweepParallel(b *testing.B) { benchSweepWorkers(b, 0) }
