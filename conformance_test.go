package deltasigma_test

import (
	"encoding/json"
	"errors"
	"testing"

	"deltasigma"
)

// minConvergedLevel is the dumbbell/chain/star convergence floor per
// protocol. Layered protocols must climb toward the 250 Kbps fair level
// (3); abr-cf's receivers ride the session's single dynamic channel and
// structurally never report more than level 1 — its conformance signal is
// throughput, not subscription depth.
func minConvergedLevel(name string) int {
	if !protocolLayered(name) {
		return 1
	}
	return 2
}

// protocolLayered reports whether the protocol exposes multiple
// subscription levels through Receiver.Level.
func protocolLayered(name string) bool { return name != "abr-cf" }

// conformanceTopologies is the facade topology matrix every registered
// protocol must pass: the paper's dumbbell, a two-bottleneck chain and a
// star with per-edge gatekeepers.
func conformanceTopologies() []struct {
	name string
	opt  deltasigma.Option
} {
	return []struct {
		name string
		opt  deltasigma.Option
	}{
		{"dumbbell", deltasigma.WithDumbbell(250_000)},
		{"chain", deltasigma.WithChain(1_000_000, 250_000)},
		{"star", deltasigma.WithStar(600_000, 250_000)},
	}
}

// TestProtocolConformance is the registry-driven conformance suite: every
// registered protocol — paper variants and competitors alike — must run
// each shipped topology to convergence, share the bottleneck with
// cross-traffic, drain to a balanced packet pool under audit, stay
// deterministic at two seeds, and either field an inflated-subscription
// attacker or return the typed *NoAttackerError. Protocol-specific
// behavior (suppression numbers, gatekeeper enforcement, level spreads)
// stays in the dedicated tests; this suite pins the common contract.
func TestProtocolConformance(t *testing.T) {
	for _, name := range deltasigma.Protocols() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, tp := range conformanceTopologies() {
				tp := tp
				t.Run(tp.name, func(t *testing.T) {
					opts := append([]deltasigma.Option{tp.opt, deltasigma.WithProtocol(name), deltasigma.WithSeed(7)},
						protocolOptions(name)...)
					exp := deltasigma.MustNew(opts...)
					r := exp.AddSession(1).Receivers[0]
					maxLevel := 0
					var res *deltasigma.Result
					for at := deltasigma.Time(5) * deltasigma.Second; at <= 40*deltasigma.Second; at += 5 * deltasigma.Second {
						res = exp.Run(at)
						if lvl := r.Level(); lvl > maxLevel {
							maxLevel = lvl
						}
					}
					if want := minConvergedLevel(name); maxLevel < want {
						t.Fatalf("%s/%s: max level = %d, want >= %d", name, tp.name, maxLevel, want)
					}
					if avg := r.Meter().AvgKbps(20*deltasigma.Second, 40*deltasigma.Second); avg < 80 {
						t.Fatalf("%s/%s: throughput %.0f Kbps too low", name, tp.name, avg)
					}
					if u := res.Utilization(); u <= 0.1 || u > 1.05 {
						t.Fatalf("%s/%s: bottleneck utilization %.2f implausible", name, tp.name, u)
					}
					drainAndVerify(t, exp)
				})
			}

			t.Run("cross-traffic", func(t *testing.T) {
				opts := append([]deltasigma.Option{deltasigma.WithDumbbell(750_000), deltasigma.WithProtocol(name), deltasigma.WithSeed(11)},
					protocolOptions(name)...)
				exp := deltasigma.MustNew(opts...)
				r := exp.AddSession(1).Receivers[0]
				tcpFlow := exp.AddTCP(0)
				exp.Run(40 * deltasigma.Second)
				if avg := r.Meter().AvgKbps(20*deltasigma.Second, 40*deltasigma.Second); avg < 50 {
					t.Fatalf("%s: multicast receiver starved at %.0f Kbps beside TCP", name, avg)
				}
				if avg := tcpFlow.Meter().AvgKbps(20*deltasigma.Second, 40*deltasigma.Second); avg < 50 {
					t.Fatalf("%s: TCP flow starved at %.0f Kbps", name, avg)
				}
				drainAndVerify(t, exp)
			})

			t.Run("determinism", func(t *testing.T) {
				for _, seed := range []uint64{3, 17} {
					first := conformanceResultJSON(t, name, seed)
					second := conformanceResultJSON(t, name, seed)
					if string(first) != string(second) {
						t.Fatalf("%s: seed %d not deterministic:\n%s\nvs\n%s", name, seed, first, second)
					}
				}
			})

			t.Run("attacker", func(t *testing.T) {
				opts := append([]deltasigma.Option{deltasigma.WithDumbbell(500_000), deltasigma.WithProtocol(name), deltasigma.WithSeed(8)},
					protocolOptions(name)...)
				exp := deltasigma.MustNew(opts...)
				s := exp.AddSession(1)
				if !deltasigma.ProtocolHasAttacker(name) {
					_, err := s.TryAddAttacker()
					var nae *deltasigma.NoAttackerError
					if !errors.As(err, &nae) {
						t.Fatalf("%s: TryAddAttacker = %v, want *NoAttackerError", name, err)
					}
					if nae.Protocol != name || nae.Reason == "" {
						t.Fatalf("%s: NoAttackerError underspecified: %+v", name, nae)
					}
					return
				}
				atk, err := s.TryAddAttacker()
				if err != nil {
					t.Fatalf("%s: TryAddAttacker: %v", name, err)
				}
				exp.At(10*deltasigma.Second, atk.Inflate)
				exp.Run(25 * deltasigma.Second)
				if !atk.Attacker() {
					t.Fatalf("%s: attacker not flagged", name)
				}
				drainAndVerify(t, exp)
			})
		})
	}
}

// conformanceResultJSON runs one short dumbbell experiment and returns the
// serialized Result for byte comparison.
func conformanceResultJSON(t *testing.T, name string, seed uint64) []byte {
	t.Helper()
	opts := append([]deltasigma.Option{deltasigma.WithDumbbell(250_000), deltasigma.WithProtocol(name), deltasigma.WithSeed(seed)},
		protocolOptions(name)...)
	exp := deltasigma.MustNew(opts...)
	exp.AddSession(2)
	res := exp.Run(15 * deltasigma.Second)
	out, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return out
}
