// Command docscheck keeps the documentation layer honest. It fails the
// build (exit 1) when
//
//   - a relative markdown link in README.md, DESIGN.md or docs/*.md points
//     at a file that does not exist, or
//   - a Go package under the repo (root facade, internal/..., cmd/...)
//     lacks a package doc comment.
//
// External links (http/https/mailto) are deliberately not fetched — the
// check must be hermetic and deterministic for CI. Run it from the repo
// root, or pass the root as the single argument:
//
//	go run ./cmd/docscheck
package main

import (
	"fmt"
	"os"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	problems, err := Check(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}
