package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoDocsClean runs the real checks against the real repo: no dead
// relative links in README.md/DESIGN.md/docs/, no undocumented packages.
func TestRepoDocsClean(t *testing.T) {
	problems, err := Check("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// TestCheckCatchesProblems builds a tiny repo with one dead link, one live
// link and one undocumented package, and checks each verdict.
func TestCheckCatchesProblems(t *testing.T) {
	root := t.TempDir()
	writeFile(t, root, "DESIGN.md", "design\n")
	writeFile(t, root, "README.md",
		"[live](DESIGN.md) and [dead](docs/MISSING.md)\n"+
			"[external](https://example.com) [anchor](#performance)\n"+
			"```\nnot a [link](nope.md) — fenced\n```\n")
	writeFile(t, root, "docs/EXTRA.md", "[up](../README.md) [gone](../LICENSE)\n")
	writeFile(t, root, "documented/doc.go", "// Package documented has a doc.\npackage documented\n")
	writeFile(t, root, "bare/bare.go", "package bare\n")

	problems, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		`README.md:1: dead link "docs/MISSING.md"`,
		`docs/EXTRA.md:1: dead link "../LICENSE"`,
		`bare: package bare has no package doc comment`,
	}
	if len(problems) != len(want) {
		t.Fatalf("got %d problems %v, want %d", len(problems), problems, len(want))
	}
	for _, w := range want {
		found := false
		for _, p := range problems {
			if strings.Contains(p, w) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing expected problem %q in %v", w, problems)
		}
	}
}

func writeFile(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
