package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Check runs every docs check against the repo rooted at root and returns
// one human-readable line per problem, sorted for deterministic output.
func Check(root string) ([]string, error) {
	var problems []string
	links, err := checkLinks(root)
	if err != nil {
		return nil, err
	}
	problems = append(problems, links...)
	docs, err := checkPackageDocs(root)
	if err != nil {
		return nil, err
	}
	problems = append(problems, docs...)
	sort.Strings(problems)
	return problems, nil
}

// linkRE matches inline markdown links and images: [text](target). It
// deliberately does not match reference-style links, which the repo's
// docs do not use.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// mdFiles lists the markdown files under the link check: README.md and
// DESIGN.md at the root, plus everything in docs/.
func mdFiles(root string) ([]string, error) {
	var files []string
	for _, name := range []string{"README.md", "DESIGN.md"} {
		p := filepath.Join(root, name)
		if _, err := os.Stat(p); err == nil {
			files = append(files, p)
		}
	}
	entries, err := os.ReadDir(filepath.Join(root, "docs"))
	if err != nil {
		if os.IsNotExist(err) {
			return files, nil
		}
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join(root, "docs", e.Name()))
		}
	}
	return files, nil
}

// checkLinks verifies every relative link target in the checked markdown
// files resolves to an existing file or directory.
func checkLinks(root string) ([]string, error) {
	files, err := mdFiles(root)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		inFence := false
		for i, line := range strings.Split(string(data), "\n") {
			// Fenced code blocks hold shell examples, not links.
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if !relativeLink(target) {
					continue
				}
				if frag := strings.IndexByte(target, '#'); frag >= 0 {
					target = target[:frag]
				}
				if target == "" {
					continue // pure fragment: same-file anchor
				}
				resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					rel, _ := filepath.Rel(root, file)
					problems = append(problems,
						fmt.Sprintf("%s:%d: dead link %q", filepath.ToSlash(rel), i+1, m[1]))
				}
			}
		}
	}
	return problems, nil
}

// relativeLink reports whether a markdown link target should resolve on
// the local filesystem.
func relativeLink(target string) bool {
	for _, scheme := range []string{"http://", "https://", "mailto:"} {
		if strings.HasPrefix(target, scheme) {
			return false
		}
	}
	return !strings.HasPrefix(target, "#")
}

// checkPackageDocs parses every Go package under root and reports those
// without a package doc comment. Test files never carry the package doc.
func checkPackageDocs(root string) ([]string, error) {
	pkgDirs := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "docs":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			pkgDirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var problems []string
	for dir := range pkgDirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return nil, err
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				rel, _ := filepath.Rel(root, dir)
				problems = append(problems,
					fmt.Sprintf("%s: package %s has no package doc comment", filepath.ToSlash(rel), name))
			}
		}
	}
	return problems, nil
}
