package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deltasigma"
	"deltasigma/internal/fuzzing"
)

// Flag validation of the single-scenario mode: every rejected combination
// must error before any simulation runs.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"zero sessions", []string{"-sessions", "0"}, "-sessions"},
		{"bad topology", []string{"-topology", "ring"}, "unknown topology"},
		{"bad capacity", []string{"-capacity", "abc"}, "bad capacity"},
		{"negative capacity", []string{"-capacity", "-5"}, "bad capacity"},
		{"dumbbell capacity count", []string{"-capacity", "100000,200000"}, "exactly one"},
		{"bad protocol", []string{"-protocol", "nope"}, "unknown protocol"},
		{"attack past end", []string{"-attack", "70", "-dur", "60"}, "inside -dur"},
		{"attackstop without attack", []string{"-attackstop", "30"}, "needs -attack"},
		{"attackstop before attack", []string{"-attack", "40", "-attackstop", "30", "-dur", "60"}, "must come after"},
		{"attackstop past end", []string{"-attack", "10", "-attackstop", "80", "-dur", "60"}, "inside -dur"},
		{"flap past end", []string{"-flap", "90", "-dur", "60"}, "inside -dur"},
		{"negative cohort", []string{"-cohort", "-3"}, "-cohort"},
		{"cohort on replicated", []string{"-cohort", "10", "-protocol", "flid-ds-replicated"}, "replicated"},
		{"cohort on mfcc", []string{"-cohort", "10", "-protocol", "mfcc"}, "not supported"},
		{"attack on abr-cf", []string{"-attack", "5", "-protocol", "abr-cf"}, "no inflated-subscription attacker"},
		{"unknown flag", []string{"-frobnicate"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(tc.args, &buf)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error = %v, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}

// -list prints the registry and runs nothing.
func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range deltasigma.Protocols() {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, buf.String())
		}
	}
}

// The default mode's -json output is the typed Result, parseable and
// shaped by the flags.
func TestRunJSONShape(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-sessions", "2", "-dur", "2", "-json", "-protocol", "flid-dl"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var res deltasigma.Result
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("non-JSON output: %v\n%s", err, buf.String())
	}
	if res.Protocol != "flid-dl" {
		t.Errorf("protocol = %q, want flid-dl", res.Protocol)
	}
	if len(res.Receivers) != 2 {
		t.Errorf("receivers = %d, want 2 (one per session)", len(res.Receivers))
	}
	if res.Seconds != 2 {
		t.Errorf("seconds = %g, want 2", res.Seconds)
	}
}

// The progress table renders a line per 5-second step plus the summary.
func TestRunTableOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-sessions", "1", "-dur", "10"}, &buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "t=   5s") || !strings.Contains(s, "t=  10s") {
		t.Errorf("missing progress rows:\n%s", s)
	}
	if !strings.Contains(s, "bottleneck utilization") {
		t.Errorf("missing summary row:\n%s", s)
	}
}

// Sweep flag validation.
func TestSweepFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad topology token", []string{"-topologies", "ring"}, "unknown topology"},
		{"bad chain count", []string{"-topologies", "chainx"}, "bad topology"},
		{"bad receivers", []string{"-receivers", "two"}, "-receivers"},
		{"bad cohorts", []string{"-cohorts", "many"}, "-cohorts"},
		{"negative cohorts", []string{"-cohorts", "-5", "-dur", "1"}, "negative"},
		{"bad seeds", []string{"-seeds", "x"}, "-seeds"},
		{"unknown protocol axis", []string{"-protocols", "bogus"}, "registered:"},
		{"unknown strategy axis", []string{"-strategies", "bogus", "-dur", "1"}, "strategy"},
		{"unknown campaign", []string{"-campaign", "nope"}, "unknown campaign"},
		{"campaign axis conflict", []string{"-campaign", "churn", "-receivers", "4"}, "no effect with -campaign"},
		{"campaign cohorts conflict", []string{"-campaign", "million", "-cohorts", "10"}, "no effect with -campaign"},
		{"campaign strategies conflict", []string{"-campaign", "shootout", "-strategies", "classic"}, "no effect with -campaign"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := runSweep(tc.args, &buf)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("runSweep(%v) error = %v, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}

// The canned shoot-out campaign runs end to end through the CLI at a tiny
// scale: every registered protocol appears in the table, the attackerless
// baseline rows fail with the typed no-attacker reason, and everything
// else posts numbers — the same invocation CI's smoke job makes.
func TestSweepShootoutCampaignTable(t *testing.T) {
	var buf bytes.Buffer
	if err := runSweep([]string{"-campaign", "shootout", "-scale", "0.05", "-workers", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if s == "" {
		t.Fatal("shootout campaign produced no table")
	}
	for _, name := range deltasigma.Protocols() {
		if !strings.Contains(s, name) {
			t.Errorf("shootout table missing protocol %q:\n%s", name, s)
		}
	}
	if !strings.Contains(s, "no inflated-subscription attacker") {
		t.Errorf("shootout table missing the attackerless baseline rows:\n%s", s)
	}
}

// -cohort threads through both output modes: the JSON Result carries a
// cohorts section with the aggregated population, and the progress table
// prints a per-member line alongside the exact receivers.
func TestRunCohortOutput(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-sessions", "1", "-cohort", "50000", "-dur", "2", "-json", "-protocol", "flid-dl"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var res deltasigma.Result
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("non-JSON output: %v\n%s", err, buf.String())
	}
	if len(res.Cohorts) != 1 || res.Cohorts[0].Members != 50000 {
		t.Fatalf("cohorts = %+v, want one with 50000 members", res.Cohorts)
	}
	if res.Cohorts[0].AvgKbps <= 0 || res.Cohorts[0].PerMemberKbps <= 0 {
		t.Errorf("cohort delivered nothing: %+v", res.Cohorts[0])
	}

	buf.Reset()
	if err := run([]string{"-sessions", "1", "-cohort", "100", "-dur", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "S1C1") || !strings.Contains(buf.String(), "online") {
		t.Errorf("progress table missing the cohort line:\n%s", buf.String())
	}
}

// Sweep -json emits a CampaignResult whose points enumerate the declared
// grid in order.
func TestSweepJSONShape(t *testing.T) {
	var buf bytes.Buffer
	err := runSweep([]string{
		"-protocols", "flid-dl", "-receivers", "1,2", "-attackers", "0,1",
		"-dur", "2", "-workers", "2", "-json",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var res deltasigma.CampaignResult
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("non-JSON output: %v\n%s", err, buf.String())
	}
	if res.Name != "adhoc" {
		t.Errorf("name = %q, want adhoc", res.Name)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4 (2 receivers × 2 attackers)", len(res.Points))
	}
	// Grid order: receivers vary slower than attackers.
	wantOrder := [][2]int{{1, 0}, {1, 1}, {2, 0}, {2, 1}}
	for i, p := range res.Points {
		if p.Point.Receivers != wantOrder[i][0] || p.Point.Attackers != wantOrder[i][1] {
			t.Errorf("point %d = r%d a%d, want r%d a%d",
				i, p.Point.Receivers, p.Point.Attackers, wantOrder[i][0], wantOrder[i][1])
		}
	}
	if res.Failures != 0 {
		t.Errorf("%d points failed", res.Failures)
	}
}

// Sweep -csv emits one header plus one row per grid point, with the header
// column set the docs promise.
func TestSweepCSVShape(t *testing.T) {
	var buf bytes.Buffer
	err := runSweep([]string{
		"-protocols", "flid-dl,flid-ds", "-dur", "2", "-csv",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want header + 2 points", len(rows))
	}
	header := rows[0]
	for i, want := range []string{"protocol", "topology", "receivers", "attackers", "strategy", "cohort", "bottleneck_bps"} {
		if header[i] != want {
			t.Errorf("header[%d] = %q, want %q", i, header[i], want)
		}
	}
	for _, row := range rows[1:] {
		if len(row) != len(header) {
			t.Errorf("ragged row: %d cells vs %d header columns", len(row), len(header))
		}
	}
	if rows[1][0] != "flid-dl" || rows[2][0] != "flid-ds" {
		t.Errorf("protocol axis out of order: %q, %q", rows[1][0], rows[2][0])
	}
}

// -shards validation across the three subcommands: negative values (other
// than fuzz's -1 = off default) are rejected before anything runs.
func TestShardsFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-shards", "-2"}, &buf); err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("run accepted negative -shards: %v", err)
	}
	if err := runSweep([]string{"-shards", "-1"}, &buf); err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("runSweep accepted negative -shards: %v", err)
	}
	if err := runFuzz([]string{"-shards", "-2"}, &buf); err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("runFuzz accepted -shards below -1: %v", err)
	}
}

// -shards with mid-run dynamics warns and runs serial; a request wider
// than the topology's usable cuts warns about unfilled shards. Neither
// warning touches the command output itself.
func TestShardsWarnings(t *testing.T) {
	defer func() { warnOut = os.Stderr }()
	var warn, buf bytes.Buffer
	warnOut = &warn

	if err := run([]string{"-sessions", "1", "-dur", "2", "-attack", "1", "-shards", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warn.String(), "-shards ignored") {
		t.Errorf("no dynamics warning:\n%s", warn.String())
	}

	warn.Reset()
	buf.Reset()
	if err := run([]string{"-sessions", "2", "-dur", "2", "-shards", "6", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warn.String(), "usable cuts") {
		t.Errorf("no under-fill warning:\n%s", warn.String())
	}
	if strings.Contains(buf.String(), "usable cuts") {
		t.Errorf("warning leaked into the JSON output:\n%s", buf.String())
	}
}

// The typed Result is byte-identical whatever -shards says; only the
// sharding metadata block differs.
func TestShardsJSONEquivalence(t *testing.T) {
	strip := func(args []string) ([]byte, *deltasigma.ShardingResult) {
		t.Helper()
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		var res deltasigma.Result
		if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
			t.Fatalf("non-JSON output: %v\n%s", err, buf.String())
		}
		sh := res.Sharding
		res.Sharding = nil
		js, err := json.Marshal(&res)
		if err != nil {
			t.Fatal(err)
		}
		return js, sh
	}

	serial, shSerial := strip([]string{"-sessions", "2", "-dur", "5", "-json", "-shards", "1"})
	sharded, shSharded := strip([]string{"-sessions", "2", "-dur", "5", "-json", "-shards", "2"})
	if !bytes.Equal(serial, sharded) {
		t.Errorf("-shards 2 changed the Result:\nserial:  %s\nsharded: %s", serial, sharded)
	}
	if shSerial == nil || shSerial.Shards != 1 {
		t.Errorf("serial sharding block = %+v, want shards=1", shSerial)
	}
	if shSharded == nil || shSharded.Shards != 2 || shSharded.MigratedHosts == 0 || shSharded.Windows == 0 {
		t.Errorf("sharded sharding block = %+v, want shards=2 with migrated hosts and windows", shSharded)
	}
}

// The fuzz subcommand: a small clean corpus exits zero with a parseable
// JSON summary, and a failing repro replays with a nonzero outcome.
func TestFuzzSmokeAndSummary(t *testing.T) {
	var buf bytes.Buffer
	err := runFuzz([]string{"-n", "4", "-seed", "1", "-workers", "2", "-json", "-out", t.TempDir()}, &buf)
	if err != nil {
		t.Fatalf("clean corpus failed: %v\n%s", err, buf.String())
	}
	var sums []fuzzing.Summary
	if err := json.Unmarshal(buf.Bytes(), &sums); err != nil {
		t.Fatalf("non-JSON summary: %v\n%s", err, buf.String())
	}
	if len(sums) != 4 || sums[0].Seed != 1 || !sums[3].Pass {
		t.Fatalf("bad summary: %+v", sums)
	}
}

func TestFuzzFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := runFuzz([]string{"-n", "0"}, &buf); err == nil || !strings.Contains(err.Error(), "-n") {
		t.Fatalf("zero -n accepted: %v", err)
	}
	if err := runFuzz([]string{"-repro", "/no/such/file.json"}, &buf); err == nil {
		t.Fatal("missing repro file accepted")
	}
}

// A repro file for a genuinely failing spec replays as a failure (nonzero
// error) with its violations printed.
func TestFuzzReproReplay(t *testing.T) {
	spec := fuzzing.Spec{
		Seed:        5,
		Protocol:    "flid-dl",
		Topology:    fuzzing.TopoSpec{Kind: "dumbbell", CapacitiesBps: []int64{600_000}},
		DurationSec: 10,
		Sessions: []fuzzing.SessionSpec{
			{Receivers: []fuzzing.ReceiverSpec{{}, {Attacker: true}}},
		},
		Events: []fuzzing.EventSpec{{Kind: fuzzing.EvOnset, AtSec: 2, Session: 1, Receiver: 2}},
		Oracle: &fuzzing.OracleSpec{Session: 1, FromSec: 6, Factor: 1.25, FloorKbps: 30},
	}
	path := filepath.Join(t.TempDir(), "repro.json")
	js, _ := json.Marshal(spec)
	if err := os.WriteFile(path, js, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := runFuzz([]string{"-repro", path}, &buf)
	if err == nil || !strings.Contains(err.Error(), "repro still fails") {
		t.Fatalf("failing repro did not fail: %v", err)
	}
	if !strings.Contains(buf.String(), "suppression-oracle") {
		t.Errorf("violations not printed:\n%s", buf.String())
	}
}
