// The `dsim sweep` subcommand: run a parallel parameter-sweep campaign —
// either a canned campaign from the scenario library or an ad-hoc grid
// declared axis by axis on the command line.
package main

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"deltasigma"
	"deltasigma/internal/campaign"
	"deltasigma/internal/scenario"
)

func runSweep(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dsim sweep", flag.ContinueOnError)
	camp := fs.String("campaign", "", "run a canned campaign (see -list) instead of an ad-hoc grid")
	scale := fs.Float64("scale", 1, "duration scale for canned campaigns (1 = full length)")
	protocols := fs.String("protocols", "flid-ds", "comma-separated protocol axis")
	topologies := fs.String("topologies", "dumbbell", "comma-separated topology axis: dumbbell, chain<N> or star<N>")
	receivers := fs.String("receivers", "1", "comma-separated well-behaved receiver counts")
	attackers := fs.String("attackers", "0", "comma-separated attacker counts")
	strategies := fs.String("strategies", "", "comma-separated attacker strategy axis: classic, colluding, adaptive, forging (empty = classic)")
	cohorts := fs.String("cohorts", "", "comma-separated aggregated cohort member counts (0 = exact receivers only)")
	capacity := fs.String("capacity", "1000000", "comma-separated bottleneck bits/s axis")
	slots := fs.String("slots", "", "comma-separated slot durations in ms (empty = protocol default)")
	spreads := fs.String("spreads", "", "comma-separated access-delay spreads in ms")
	churns := fs.String("churns", "", "comma-separated Poisson churn rates in toggles/s (empty = static membership)")
	attackAts := fs.String("attackats", "", "comma-separated attacker onset times in seconds (empty = -attack)")
	flaps := fs.String("flaps", "", "comma-separated bottleneck flap periods in seconds (empty = stable links)")
	seeds := fs.String("seeds", "1", "comma-separated seed replicas")
	dur := fs.Float64("dur", 30, "simulated seconds per grid point")
	warmup := fs.Float64("warmup", 0, "seconds excluded from statistics (0 = dur/10)")
	attackAt := fs.Float64("attack", 0, "seconds until attackers inflate (0 = dur/4)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = one per CPU)")
	shards := fs.Int("shards", 0, "parallel shards inside each static grid point (0 or 1 = serial; dynamic points always run serial; results are identical)")
	jsonOut := fs.Bool("json", false, "emit the CampaignResult as JSON")
	csvOut := fs.Bool("csv", false, "emit the CampaignResult as CSV")
	list := fs.Bool("list", false, "list canned campaigns and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be non-negative (0 = serial), got %d", *shards)
	}

	if *list {
		for _, c := range scenario.Campaigns() {
			fmt.Fprintf(out, "%-20s %s (%d points at scale 1)\n", c.Name, c.Description, c.Build(scenario.DefaultOptions()).Size())
		}
		return nil
	}

	var sw deltasigma.Sweep
	if *camp != "" {
		c, ok := scenario.LookupCampaign(*camp)
		if !ok {
			return fmt.Errorf("unknown campaign %q (have %v)", *camp, scenario.CampaignNames())
		}
		// A canned campaign fixes its own grid; only -scale and -seeds
		// adjust it. Reject axis flags that would be silently ignored.
		for _, name := range []string{"protocols", "topologies", "receivers", "attackers", "strategies", "cohorts", "capacity", "slots", "spreads", "churns", "attackats", "flaps", "dur", "warmup", "attack"} {
			if flagWasSet(fs, name) {
				return fmt.Errorf("-%s has no effect with -campaign (canned campaigns fix their grid; use -scale and -seeds, or drop -campaign for an ad-hoc grid)", name)
			}
		}
		opt := scenario.DefaultOptions()
		opt.Scale = *scale
		sw = c.Build(opt)
		if flagWasSet(fs, "seeds") {
			seedAxis, err := parseUints(*seeds)
			if err != nil {
				return err
			}
			sw.Seeds = seedAxis // replicate the canned grid across seeds
		}
	} else {
		var err error
		if sw, err = buildSweep(sweepAxes{
			protocols: *protocols, topologies: *topologies,
			receivers: *receivers, attackers: *attackers, strategies: *strategies,
			cohorts: *cohorts, capacity: *capacity, slots: *slots, spreads: *spreads,
			churns: *churns, attackAts: *attackAts, flaps: *flaps,
			seeds: *seeds, dur: *dur, warmup: *warmup, attackAt: *attackAt,
		}); err != nil {
			return err
		}
	}

	sw.Shards = *shards
	res, err := sw.Run(*workers)
	if err != nil {
		return err
	}
	switch {
	case *jsonOut:
		js, err := res.JSON()
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(out, "%s\n", js)
		return err
	case *csvOut:
		return res.WriteCSV(out)
	default:
		printSweepTable(res, *workers, out)
		return nil
	}
}

// sweepAxes bundles the ad-hoc grid flags.
type sweepAxes struct {
	protocols, topologies, receivers, attackers string
	strategies, cohorts, capacity, slots        string
	spreads, churns, attackAts, flaps           string
	seeds                                       string
	dur, warmup, attackAt                       float64
}

// buildSweep assembles an ad-hoc sweep from the axis flags.
func buildSweep(ax sweepAxes) (deltasigma.Sweep, error) {
	var sw deltasigma.Sweep
	sw.Name = "adhoc"
	sw.Protocols = splitList(ax.protocols)
	// Validate the protocol axis up front: a typo would otherwise surface
	// as one opaque failure per grid point instead of a usable message.
	for _, name := range sw.Protocols {
		if _, ok := deltasigma.LookupProtocol(name); !ok {
			return sw, fmt.Errorf("-protocols: unknown protocol %q (registered: %v)", name, deltasigma.Protocols())
		}
	}
	sw.Strategies = splitList(ax.strategies)
	for _, tok := range splitList(ax.topologies) {
		spec, err := parseTopologySpec(tok)
		if err != nil {
			return sw, err
		}
		sw.Topologies = append(sw.Topologies, spec)
	}
	var err error
	if sw.Receivers, err = parseInts(ax.receivers); err != nil {
		return sw, fmt.Errorf("-receivers: %w", err)
	}
	if sw.Attackers, err = parseInts(ax.attackers); err != nil {
		return sw, fmt.Errorf("-attackers: %w", err)
	}
	if sw.Cohorts, err = parseInts(ax.cohorts); err != nil {
		return sw, fmt.Errorf("-cohorts: %w", err)
	}
	caps, err := parseCaps(ax.capacity, 1_000_000)
	if err != nil {
		return sw, err
	}
	sw.Bottlenecks = caps
	if sw.Slots, err = parseMillis(ax.slots); err != nil {
		return sw, fmt.Errorf("-slots: %w", err)
	}
	if sw.DelaySpreads, err = parseMillis(ax.spreads); err != nil {
		return sw, fmt.Errorf("-spreads: %w", err)
	}
	if sw.ChurnRates, err = parseFloats(ax.churns); err != nil {
		return sw, fmt.Errorf("-churns: %w", err)
	}
	if sw.AttackAts, err = parseSeconds(ax.attackAts); err != nil {
		return sw, fmt.Errorf("-attackats: %w", err)
	}
	if sw.FlapPeriods, err = parseSeconds(ax.flaps); err != nil {
		return sw, fmt.Errorf("-flaps: %w", err)
	}
	seedAxis, err := parseUints(ax.seeds)
	if err != nil {
		return sw, fmt.Errorf("-seeds: %w", err)
	}
	sw.Seeds = seedAxis
	sw.Duration = deltasigma.Time(ax.dur * float64(deltasigma.Second))
	sw.Warmup = deltasigma.Time(ax.warmup * float64(deltasigma.Second))
	sw.AttackAt = deltasigma.Time(ax.attackAt * float64(deltasigma.Second))
	return sw, nil
}

// parseTopologySpec maps a CLI token to a TopologySpec: "dumbbell",
// "chain<N>" or "star<N>".
func parseTopologySpec(tok string) (deltasigma.TopologySpec, error) {
	switch {
	case tok == "dumbbell":
		return deltasigma.DumbbellSpec(), nil
	case strings.HasPrefix(tok, "chain"):
		n, err := strconv.Atoi(tok[len("chain"):])
		if err != nil || n < 1 {
			return deltasigma.TopologySpec{}, fmt.Errorf("bad topology %q (want chain<N>)", tok)
		}
		return deltasigma.ChainSpec(n), nil
	case strings.HasPrefix(tok, "star"):
		n, err := strconv.Atoi(tok[len("star"):])
		if err != nil || n < 1 {
			return deltasigma.TopologySpec{}, fmt.Errorf("bad topology %q (want star<N>)", tok)
		}
		return deltasigma.StarSpec(n), nil
	default:
		return deltasigma.TopologySpec{}, fmt.Errorf("unknown topology %q (dumbbell, chain<N> or star<N>)", tok)
	}
}

func printSweepTable(res *deltasigma.CampaignResult, workers int, out io.Writer) {
	if workers <= 0 {
		workers = campaign.DefaultWorkers()
	}
	name := res.Name
	if name == "" {
		name = "sweep"
	}
	fmt.Fprintf(out, "%s: %d points, %.0f simulated seconds each\n\n", name, len(res.Points), res.DurationNs.Sec())
	fmt.Fprintf(out, "%-44s %10s %10s %10s %8s %6s\n", "point", "good Kbps", "p90 Kbps", "atk Kbps", "util", "lost")
	for _, p := range res.Points {
		if p.Error != "" {
			fmt.Fprintf(out, "%-44s FAILED: %s\n", p.Point, p.Error)
			continue
		}
		fmt.Fprintf(out, "%-44s %10.1f %10.1f %10.1f %7.1f%% %6d\n",
			p.Point, p.GoodMeanKbps, p.GoodP90Kbps, p.AttackerMeanKbps, 100*p.Utilization, p.LostPackets)
	}
	fmt.Fprintf(out, "\n%d workers, %d failures, wall clock %v\n", workers, res.Failures, res.Elapsed.Round(res.Elapsed/100+1))
}

// flagWasSet reports whether the named flag was set explicitly on the
// command line (as opposed to holding its default value).
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// splitList splits a comma-separated flag, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseUints(s string) ([]uint64, error) {
	var out []uint64
	for _, p := range splitList(s) {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloats parses a comma-separated list of non-negative floats.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad rate %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseDurations parses a comma-separated list of durations expressed in
// the given unit ("seconds"/"milliseconds" names the unit in errors).
func parseDurations(s, what string, unit deltasigma.Time) ([]deltasigma.Time, error) {
	var out []deltasigma.Time
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad duration %q (%s)", p, what)
		}
		out = append(out, deltasigma.Time(v*float64(unit)))
	}
	return out, nil
}

// parseSeconds parses a comma-separated list of second durations.
func parseSeconds(s string) ([]deltasigma.Time, error) {
	return parseDurations(s, "seconds", deltasigma.Second)
}

// parseMillis parses a comma-separated list of millisecond durations.
func parseMillis(s string) ([]deltasigma.Time, error) {
	return parseDurations(s, "milliseconds", deltasigma.Millisecond)
}
