// Command dsim runs deltasigma experiments from the command line.
//
// The default mode runs a single configurable scenario through the public
// experiment builder: any registered protocol variant on any built-in
// topology, with optional inflated-subscription attack and TCP/CBR cross
// traffic, printing per-receiver throughput over time or a JSON dump of
// the typed results.
//
//	go run ./cmd/dsim -protocol flid-dl -sessions 2 -attack 30 -dur 90
//	go run ./cmd/dsim -protocol flid-ds -sessions 2 -attack 30 -attackstop 60 -dur 90
//	go run ./cmd/dsim -protocol flid-ds -topology chain -capacity 500000,250000 -tcp 1 -dur 60
//	go run ./cmd/dsim -protocol flid-ds -sessions 2 -churn 0.5 -flap 20 -dur 120
//	go run ./cmd/dsim -protocol flid-ds-threshold -topology star -capacity 250000,500000 -sessions 1 -json
//	go run ./cmd/dsim -protocol flid-ds -sessions 1 -cohort 1000000 -dur 60
//	go run ./cmd/dsim -list
//
// Mid-run dynamics — attacker onset and stop, Poisson membership churn,
// bottleneck flapping — are scripted through the experiment timeline
// (deltasigma.WithTimeline and friends) via -attack, -attackstop, -churn
// and -flap.
//
// The `sweep` subcommand runs a whole campaign — the cartesian product of
// protocol/topology/receiver/attacker/capacity/slot/delay-spread/churn/
// attack-onset/flap/seed axes — across all cores, with deterministic
// merged output (JSON, CSV or a table) that is byte-identical for any
// -workers value:
//
//	go run ./cmd/dsim sweep -protocols flid-dl,flid-ds -receivers 1,4,16,64 -attackers 0,1,2 -dur 30
//	go run ./cmd/dsim sweep -protocols flid-ds -churns 0,0.5,2 -flaps 0,10 -dur 60
//	go run ./cmd/dsim sweep -attackers 1 -attackats 5,15,25 -dur 30
//	go run ./cmd/dsim sweep -protocols flid-ds -cohorts 10000,100000,1000000 -receivers 0 -dur 30
//	go run ./cmd/dsim sweep -campaign million -scale 0.5 -json
//	go run ./cmd/dsim sweep -campaign attacker-fraction -scale 0.5 -json
//	go run ./cmd/dsim sweep -campaign churn -workers 4 -csv
//	go run ./cmd/dsim sweep -list
//
// The `fuzz` subcommand machine-generates seeded adversarial scenarios and
// runs each one under the full invariant-audit layer; failures are shrunk
// to minimal JSON reproducers that `-repro` replays:
//
//	go run ./cmd/dsim fuzz -n 200 -seed 1 -workers 4
//	go run ./cmd/dsim fuzz -repro fuzz_repro_42.json
//
// The `hunt` subcommand is the adversarial attack optimizer: a seeded
// evolutionary search over the fuzzer's scenario space that maximizes
// attacker advantage (best attacker's throughput over the honest median),
// emitting a ranked worst-scenario corpus with shrunk repro files. Like
// every campaign it is byte-identical at any -workers value:
//
//	go run ./cmd/dsim hunt -gens 8 -pop 24 -seed 1 -workers 4
//	go run ./cmd/dsim hunt -gens 3 -pop 16 -seed 1 -out hunt-out -json
//	go run ./cmd/dsim fuzz -repro hunt-out/hunt_repro_rank1.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"deltasigma"
)

// warnOut receives advisory warnings (never the command output itself);
// tests swap it to capture warnings.
var warnOut io.Writer = os.Stderr

func main() {
	var err error
	switch {
	case len(os.Args) > 1 && os.Args[1] == "sweep":
		err = runSweep(os.Args[2:], os.Stdout)
	case len(os.Args) > 1 && os.Args[1] == "fuzz":
		err = runFuzz(os.Args[2:], os.Stdout)
	case len(os.Args) > 1 && os.Args[1] == "hunt":
		err = runHunt(os.Args[2:], os.Stdout)
	default:
		err = run(os.Args[1:], os.Stdout)
	}
	if err != nil {
		// -h/-help reaches here as flag.ErrHelp under ContinueOnError; the
		// usage text has already been printed, and help is not a failure.
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "dsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dsim", flag.ContinueOnError)
	protocol := fs.String("protocol", "flid-ds", "protocol variant (see -list)")
	topology := fs.String("topology", "dumbbell", "topology: dumbbell, chain or star")
	capacity := fs.String("capacity", "", "comma-separated bottleneck bits/s, one per link (default 250k per session)")
	sessions := fs.Int("sessions", 2, "number of multicast sessions (one receiver each)")
	cohort := fs.Int("cohort", 0, "aggregated well-behaved members added to each session as one fluid cohort (0 = none)")
	groups := fs.Int("groups", 0, "groups per session (0 = the paper's 10; flid-ds-replicated wants ~6)")
	attackAt := fs.Float64("attack", 0, "seconds until session 1's receiver inflates (0 = no attack)")
	attackStop := fs.Float64("attackstop", 0, "seconds until the attacker deflates again (0 = attack runs to the end; needs -attack)")
	churn := fs.Float64("churn", 0, "Poisson membership churn in toggles/s across each session's receivers (0 = static membership)")
	flap := fs.Float64("flap", 0, "bottleneck flap period in seconds, down a tenth of each period (0 = stable links)")
	nTCP := fs.Int("tcp", 0, "number of TCP Reno competitors")
	cbrFrac := fs.Float64("cbr", 0, "on-off CBR cross traffic at this fraction of the narrowest bottleneck (0 = none)")
	dur := fs.Float64("dur", 60, "simulated seconds")
	seed := fs.Uint64("seed", 1, "random seed")
	shards := fs.Int("shards", -1, "parallel simulation shards: 0 = auto (one per core), 1 = serial, >1 explicit (results are identical either way)")
	jsonOut := fs.Bool("json", false, "dump the typed Result as JSON instead of the progress table")
	list := fs.Bool("list", false, "list registered protocols and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range deltasigma.Protocols() {
			fmt.Fprintln(out, name)
		}
		return nil
	}

	if *sessions < 1 {
		return fmt.Errorf("-sessions must be at least 1, got %d", *sessions)
	}
	caps, err := parseCaps(*capacity, int64(*sessions)*250_000)
	if err != nil {
		return err
	}
	// The narrowest link bounds any flow that crosses every bottleneck
	// (exact for dumbbell and chain; conservative for star spokes).
	narrowest := caps[0]
	for _, c := range caps {
		if c < narrowest {
			narrowest = c
		}
	}

	// Mid-run dynamics are scripted through the timeline, which mutates
	// cross-shard state; dsim declines the shard request up front rather
	// than let AddEvents reject it after receivers have migrated.
	shardsRequested := flagWasSet(fs, "shards")
	if shardsRequested && *shards < 0 {
		return fmt.Errorf("-shards must be non-negative (0 = auto, 1 = serial), got %d", *shards)
	}
	dynamics := *attackAt > 0 || *churn > 0 || *flap > 0
	if shardsRequested && dynamics && *shards != 1 {
		fmt.Fprintln(warnOut, "dsim: -shards ignored: mid-run dynamics (-attack, -churn, -flap) require serial execution")
		shardsRequested = false
	}

	opts := []deltasigma.Option{
		deltasigma.WithProtocol(*protocol),
		deltasigma.WithSeed(*seed),
	}
	if shardsRequested {
		opts = append(opts, deltasigma.WithShards(*shards))
	}
	if *groups > 0 {
		opts = append(opts, deltasigma.WithSchedule(deltasigma.RateSchedule{
			Base: 100_000, Mult: 1.5, N: *groups,
		}))
	}
	switch *topology {
	case "dumbbell":
		if len(caps) != 1 {
			return fmt.Errorf("dumbbell takes exactly one -capacity, got %d", len(caps))
		}
		opts = append(opts, deltasigma.WithDumbbell(caps[0]))
	case "chain":
		opts = append(opts, deltasigma.WithChain(caps...))
	case "star":
		opts = append(opts, deltasigma.WithStar(caps...))
	default:
		return fmt.Errorf("unknown topology %q (dumbbell, chain or star)", *topology)
	}

	exp, err := deltasigma.New(opts...)
	if err != nil {
		return err
	}
	if *cohort < 0 {
		return fmt.Errorf("-cohort must be non-negative, got %d", *cohort)
	}
	if *cohort > 0 {
		if !deltasigma.ProtocolSupportsCohorts(*protocol) {
			return fmt.Errorf("-cohort is not supported by protocol %q (no layered fluid aggregate for the cohort model to ride)", *protocol)
		}
	}

	if *attackAt > 0 && *attackAt >= *dur {
		return fmt.Errorf("-attack %gs must be inside -dur %gs", *attackAt, *dur)
	}
	if *flap > 0 && *flap >= *dur {
		return fmt.Errorf("-flap %gs must be inside -dur %gs (the first outage starts one period in)", *flap, *dur)
	}
	if *attackStop > 0 {
		if *attackAt <= 0 {
			return fmt.Errorf("-attackstop needs -attack")
		}
		if *attackStop <= *attackAt {
			return fmt.Errorf("-attackstop %gs must come after -attack %gs", *attackStop, *attackAt)
		}
		if *attackStop >= *dur {
			return fmt.Errorf("-attackstop %gs must be inside -dur %gs", *attackStop, *dur)
		}
	}
	end := deltasigma.Time(*dur * float64(deltasigma.Second))
	secs := func(s float64) deltasigma.Time { return deltasigma.Time(s * float64(deltasigma.Second)) }

	var receivers []*deltasigma.Receiver
	for i := 0; i < *sessions; i++ {
		s := exp.AddSession(0)
		if i == 0 && *attackAt > 0 {
			// The Try form surfaces the typed no-attacker refusal of
			// attackerless schemes (abr-cf) as a clean CLI error instead of
			// a panic trace.
			atk, err := s.TryAddAttacker()
			if err != nil {
				return fmt.Errorf("-attack: %w", err)
			}
			receivers = append(receivers, atk)
		} else {
			receivers = append(receivers, s.AddReceiver())
		}
		if *cohort > 0 {
			s.AddCohort(*cohort)
		}
	}
	for i := 0; i < *nTCP; i++ {
		exp.AddTCP(deltasigma.Time(i) * 100 * deltasigma.Millisecond)
	}
	if *cbrFrac > 0 {
		exp.AddCBR(int64(*cbrFrac*float64(narrowest)), 5*deltasigma.Second, 5*deltasigma.Second)
	}

	// All mid-run dynamics ride the experiment timeline.
	var events []deltasigma.TimelineEvent
	if *attackAt > 0 {
		events = append(events, deltasigma.AttackerOnset{At: secs(*attackAt), Session: 1})
		if *attackStop > 0 {
			events = append(events, deltasigma.AttackerStop{At: secs(*attackStop), Session: 1})
		}
	}
	if *churn > 0 {
		for i := 1; i <= *sessions; i++ {
			if i == 1 && *attackAt > 0 && *cohort == 0 {
				continue // session 1's only well-behaved member is the attacker
			}
			events = append(events, deltasigma.PoissonChurn{Session: i, Rate: *churn, To: end})
		}
	}
	if *flap > 0 {
		for l := range exp.Topo.Bottlenecks() {
			events = append(events, deltasigma.LinkFlap{Link: l, Period: secs(*flap), To: end})
		}
	}
	exp.AddEvents(events...)
	if shardsRequested {
		if got, migrated, reason := exp.ShardStatus(); reason != "" {
			fmt.Fprintf(warnOut, "dsim: running serial: %s\n", reason)
		} else if got > 1 && migrated < got-1 {
			fmt.Fprintf(warnOut, "dsim: -shards %d exceeds the usable cuts: %d migratable receiver host(s) fill only %d of %d receiver shards\n",
				got, migrated, migrated, got-1)
		}
	}
	if *jsonOut {
		res := exp.Run(end)
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}

	fmt.Fprintf(out, "%s on %s, %d sessions, bottleneck(s) %v bits/s\n\n",
		*protocol, *topology, *sessions, caps)

	step := deltasigma.Time(5) * deltasigma.Second
	var last deltasigma.Time
	for t := step; t <= end; t += step {
		exp.Advance(t) // step cheaply; snapshot one Result at the end
		last = t
		fmt.Fprintf(out, "t=%4.0fs", t.Sec())
		for _, r := range receivers {
			fmt.Fprintf(out, "  %s: %3.0fKbps (lvl %d)", r.Label(), r.Meter().AvgKbps(t-step, t), r.Level())
		}
		for _, c := range exp.Cohorts() {
			fmt.Fprintf(out, "  %s: %3.0fKbps/member (lvl %d, %d online)",
				c.Label(), c.Meter().AvgKbps(t-step, t)/float64(c.Members()), c.Level(), c.Online())
		}
		fmt.Fprintln(out)
	}
	if last > 0 {
		res := exp.Run(last)
		fmt.Fprintf(out, "\nbottleneck utilization %.0f%%, %d packets lost\n",
			100*res.Utilization(), res.LostPackets)
		for _, c := range res.Cross {
			fmt.Fprintf(out, "%s: %.0f Kbps average\n", c.Label, c.AvgKbps)
		}
	}
	return nil
}

// parseCaps parses the comma-separated -capacity list, defaulting to one
// bottleneck of fallback bits/s.
func parseCaps(s string, fallback int64) ([]int64, error) {
	if s == "" {
		return []int64{fallback}, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad capacity %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
