// Command dsim runs a single configurable attack scenario: multicast
// sessions plus an optional inflated-subscription attacker on the paper's
// dumbbell, printing per-receiver throughput over time.
//
//	go run ./cmd/dsim -protected=false -sessions 2 -attack 30 -dur 90
//	go run ./cmd/dsim -protected=true  -sessions 2 -attack 30 -dur 90
package main

import (
	"flag"
	"fmt"

	"deltasigma"
)

func main() {
	protected := flag.Bool("protected", true, "run FLID-DS (true) or plain FLID-DL (false)")
	sessions := flag.Int("sessions", 2, "number of multicast sessions (one receiver each)")
	capacity := flag.Int64("capacity", 0, "bottleneck bits/s (default 250k per session)")
	attackAt := flag.Float64("attack", 0, "seconds until session 1's receiver inflates (0 = no attack)")
	dur := flag.Float64("dur", 60, "simulated seconds")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	cap := *capacity
	if cap == 0 {
		cap = int64(*sessions) * 250_000
	}

	exp := deltasigma.NewExperiment(cap, *protected, *seed)
	var receivers []*deltasigma.Receiver
	var labels []string
	for i := 0; i < *sessions; i++ {
		s := exp.AddSession(0)
		var r *deltasigma.Receiver
		if i == 0 && *attackAt > 0 {
			r = s.AddAttacker()
			labels = append(labels, fmt.Sprintf("F%d(attacker)", i+1))
		} else {
			r = s.AddReceiver()
			labels = append(labels, fmt.Sprintf("F%d", i+1))
		}
		receivers = append(receivers, r)
	}
	exp.Start()
	if *attackAt > 0 {
		exp.At(deltasigma.Time(*attackAt*float64(deltasigma.Second)), receivers[0].Inflate)
	}

	mode := "FLID-DL (unprotected)"
	if *protected {
		mode = "FLID-DS (DELTA+SIGMA)"
	}
	fmt.Printf("%s, %d sessions, %.0f Kbps bottleneck\n\n", mode, *sessions, float64(cap)/1000)

	step := deltasigma.Time(5) * deltasigma.Second
	for t := step; t.Sec() <= *dur; t += step {
		exp.Run(t)
		fmt.Printf("t=%4.0fs", t.Sec())
		for i, r := range receivers {
			fmt.Printf("  %s: %3.0fKbps (lvl %d)", labels[i], r.Meter().AvgKbps(t-step, t), r.Level())
		}
		fmt.Println()
	}
}
