// The `dsim hunt` subcommand: the adversarial attack optimizer. Where
// `dsim fuzz` samples scenarios at random and checks invariants, hunt
// runs a fitness-guided evolutionary search over the same scenario space
// — mutating timelines, topologies, onset schedules, attacker placement
// and strategies — maximizing attacker advantage (attacker throughput
// over the honest median in the oracle window). The output is a ranked
// corpus of worst-known scenarios with shrunk repro specs, byte-identical
// at any -workers value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"deltasigma/internal/fuzzing"
)

func runHunt(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dsim hunt", flag.ContinueOnError)
	gens := fs.Int("gens", 8, "generations of evolutionary search")
	pop := fs.Int("pop", 24, "population per generation")
	seed := fs.Uint64("seed", 1, "master seed for the whole search")
	workers := fs.Int("workers", 0, "evaluation worker goroutines (0 = one per CPU)")
	jsonOut := fs.Bool("json", false, "emit the full report as JSON")
	outDir := fs.String("out", "", "directory for the corpus and repro files (empty = don't write)")
	keep := fs.Int("keep", 8, "ranked scenarios kept in the corpus")
	shrinkTop := fs.Int("shrink-top", 2, "top scenarios to shrink into minimal repros")
	shrinkBudget := fs.Int("shrink", fuzzing.DefaultHuntShrinkBudget, "max evaluation runs per shrink")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gens <= 0 || *pop <= 1 {
		return fmt.Errorf("-gens must be positive and -pop at least 2, got %d and %d", *gens, *pop)
	}

	report := fuzzing.Hunt(fuzzing.HuntConfig{
		Gens:         *gens,
		Pop:          *pop,
		Seed:         *seed,
		Workers:      *workers,
		Keep:         *keep,
		ShrinkTop:    *shrinkTop,
		ShrinkBudget: *shrinkBudget,
	})

	if *outDir != "" {
		if err := writeHuntCorpus(*outDir, report); err != nil {
			return err
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(out, "hunt: %d generations x %d population (seed %d), %d evaluations\n",
			report.Config.Gens, report.Config.Pop, report.Config.Seed, report.Evaluated)
		fmt.Fprintf(out, "best per generation:")
		for _, b := range report.GenBest {
			fmt.Fprintf(out, " %.2f", b)
		}
		fmt.Fprintln(out)
		for _, sc := range report.Scenarios {
			fmt.Fprintf(out, "#%d advantage %.2fx  %s at %.0f Kbps vs honest median %.0f Kbps  (%s, gen %d)\n",
				sc.Rank, sc.Fitness, sc.Eval.Attacker, sc.Eval.AttackerKbps,
				sc.Eval.HonestMedianKbps, sc.Spec.Protocol, sc.Gen)
			if sc.Shrunk != nil {
				fmt.Fprintf(out, "    shrunk repro: %d receivers, %d events, advantage %.2fx\n",
					countReceivers(*sc.Shrunk), len(sc.Shrunk.Events), sc.ShrunkEval.Fitness)
			}
		}
	}
	if report.Best() <= 0 {
		return fmt.Errorf("hunt found no scenario with positive attacker advantage")
	}
	return nil
}

// writeHuntCorpus writes the full report plus one replayable repro file
// per shrunk scenario.
func writeHuntCorpus(dir string, report fuzzing.HuntReport) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	js, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "hunt_corpus.json"), append(js, '\n'), 0o644); err != nil {
		return err
	}
	for _, sc := range report.Scenarios {
		if sc.Shrunk == nil {
			continue
		}
		path := filepath.Join(dir, fmt.Sprintf("hunt_repro_rank%d.json", sc.Rank))
		if err := fuzzing.WriteRepro(path, fuzzing.Repro{Spec: *sc.Shrunk}); err != nil {
			return err
		}
	}
	return nil
}

func countReceivers(sp fuzzing.Spec) int {
	n := 0
	for _, ss := range sp.Sessions {
		n += len(ss.Receivers)
	}
	return n
}
