// The `dsim fuzz` subcommand: machine-generate seeded adversarial
// scenarios — random-but-valid topologies, protocols, populations, cross
// traffic and timelines — and run each one under the full invariant-audit
// layer on a worker pool. Failures are shrunk to minimal reproducers and
// written as JSON files that -repro replays.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"deltasigma/internal/fuzzing"
)

func runFuzz(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dsim fuzz", flag.ContinueOnError)
	n := fs.Int("n", 64, "number of scenarios to generate and run")
	seed := fs.Uint64("seed", 1, "first fuzz seed; scenarios use seed..seed+n-1")
	workers := fs.Int("workers", 0, "worker goroutines (0 = one per CPU)")
	jsonOut := fs.Bool("json", false, "emit the per-seed summary as JSON")
	outDir := fs.String("out", ".", "directory for repro files of failing seeds")
	repro := fs.String("repro", "", "replay a repro file instead of fuzzing")
	verbose := fs.Bool("v", false, "print one line per scenario")
	shrink := fs.Int("shrink", fuzzing.DefaultShrinkBudget, "max runs spent minimizing each failure (0 disables shrinking)")
	shards := fs.Int("shards", -1, "request WithShards on every scenario (0 = auto, -1 = off); audited runs fall back to serial, so fingerprints never move")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < -1 {
		return fmt.Errorf("-shards must be -1 (off), 0 (auto) or a positive shard count, got %d", *shards)
	}
	fuzzing.ShardRequest = *shards

	if *repro != "" {
		return replayRepro(*repro, *jsonOut, out)
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}

	outs := fuzzing.Campaign(*seed, *n, *workers)
	sums := fuzzing.Summarize(outs)
	failures := 0
	for i, o := range outs {
		if o.Failed() {
			failures++
			path, err := writeFailureRepro(*outDir, fuzzing.Generate(o.Seed), o, *shrink)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "seed %d FAILED (%s): repro written to %s\n", o.Seed, failureSummary(o), path)
		} else if *verbose && !*jsonOut {
			fmt.Fprintf(out, "seed %d ok %s\n", o.Seed, sums[i].Fingerprint)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sums); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(out, "%d scenarios (seeds %d..%d), %d failed\n", *n, *seed, *seed+uint64(*n)-1, failures)
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d fuzzed scenarios violated invariants", failures, *n)
	}
	return nil
}

// writeFailureRepro shrinks a failing seed's spec (budget permitting) and
// writes the minimal reproducer, returning its path.
func writeFailureRepro(dir string, spec fuzzing.Spec, o fuzzing.Outcome, budget int) (string, error) {
	if budget > 0 {
		spec, o = fuzzing.Shrink(spec, budget)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("fuzz_repro_%d.json", o.Seed))
	if err := fuzzing.WriteRepro(path, fuzzing.Repro{Spec: spec, Outcome: o}); err != nil {
		return "", err
	}
	return path, nil
}

// failureSummary compresses an outcome's diagnostics into one line.
func failureSummary(o fuzzing.Outcome) string {
	if o.Err != "" {
		return o.Err
	}
	if len(o.Violations) == 0 {
		return "failed"
	}
	s := o.Violations[0].Rule
	if len(o.Violations) > 1 {
		s += fmt.Sprintf(" +%d more", len(o.Violations)-1)
	}
	return s
}

// replayRepro re-runs a repro file's spec under full audit and reports.
func replayRepro(path string, jsonOut bool, out io.Writer) error {
	r, err := fuzzing.ReadRepro(path)
	if err != nil {
		return err
	}
	res := fuzzing.Run(r.Spec, nil)
	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(out, "repro %s (seed %d): fingerprint %s\n", path, res.Seed, res.Fingerprint)
		for _, v := range res.Violations {
			fmt.Fprintf(out, "  %v\n", v)
		}
		if res.Err != "" {
			fmt.Fprintf(out, "  error: %s\n", res.Err)
		}
	}
	if res.Failed() {
		return fmt.Errorf("repro still fails (%s)", failureSummary(res))
	}
	fmt.Fprintln(out, "repro passes — the underlying bug appears fixed")
	return nil
}
