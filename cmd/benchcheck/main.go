// Command benchcheck is the CI benchmark-regression gate: it parses `go
// test -bench` output and fails when a headline benchmark drifts from the
// recorded baseline (BENCH_pr6.json) on either tracked metric:
//
//   - allocs/op, tolerance -tolerance (default 5%): allocation counts are
//     deterministic for a fixed -benchtime iteration count, so the worst
//     observed sample gates exactly.
//
//   - ns/op, band -ns-tolerance (default ±15%): wall time is noisy on
//     shared runners, so the gate takes the MEDIAN across repetitions
//     (run with -count=3) and allows a generous band. A median outside the
//     band in either direction fails: slower is a regression, and more
//     than 15% faster means the baseline is stale and must be re-recorded
//     deliberately. Set -ns-tolerance to a negative value to disable.
//
//     go test -run=NoTests -bench='Fig01|Fig07|Cohort1M' -benchtime=3x -count=3 -benchmem . | tee bench.txt
//     go run ./cmd/benchcheck -baseline BENCH_pr6.json -bench bench.txt
//
// Every benchmark named in the baseline's "headline" section must appear
// in the bench output; a missing headline benchmark fails the gate (a
// deleted or renamed benchmark must update the baseline deliberately).
// A headline name may carry the GOMAXPROCS suffix (BenchmarkX-8) to gate
// exactly one row of a -cpu=1,4,8 run — how the sharded-simulation speedup
// rows are pinned — while a bare name aggregates every row of that
// benchmark.
//
// Re-baselining is deliberate but not manual: -update rewrites the
// baseline's headline after-numbers in place from the same bench output
// the gate would have read (median ns/op, worst B/op and allocs/op),
// leaving every other field — before-numbers, notes, environment — intact:
//
//	go run ./cmd/benchcheck -baseline BENCH_pr7.json -bench bench.txt -update
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baseline mirrors the parts of BENCH_pr6.json the gate reads.
type baseline struct {
	PR       int                      `json:"pr"`
	Headline map[string]headlineEntry `json:"headline"`
}

type headlineEntry struct {
	After metrics `json:"after"`
}

type metrics struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"B_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// benchLine matches one `go test -bench -benchmem` result line, e.g.
//
//	BenchmarkFig01InflatedSubscription-4  3  103294204 ns/op  7157898 B/op  177771 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([\d.]+) ns/op\s+(\d+) B/op\s+(\d+) allocs/op`)

// parseBench extracts every per-benchmark sample from -bench output, in
// file order. Repetitions (-count>1, several packages) each contribute one
// sample; the gates reduce them per metric — worst for allocs/op, median
// for ns/op — so a gate never passes on the luckiest sample.
//
// Each sample is stored under both its exact printed name (with the
// GOMAXPROCS suffix, e.g. BenchmarkX-8) and the bare name. A baseline that
// names the suffixed form gates one -cpu row exactly — how the sharded
// speedup rows are pinned — while bare names aggregate every row, keeping
// pre-suffix baselines valid. A -cpu=1 row prints without a suffix, so it
// only ever contributes to the bare name.
func parseBench(path string) (map[string][]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]metrics)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[3], 64)
		b, _ := strconv.ParseFloat(m[4], 64)
		allocs, _ := strconv.ParseFloat(m[5], 64)
		sample := metrics{NsOp: ns, BOp: b, AllocsOp: allocs}
		out[m[1]] = append(out[m[1]], sample)
		if m[2] != "" {
			out[m[1]+m[2]] = append(out[m[1]+m[2]], sample)
		}
	}
	return out, sc.Err()
}

// worstAllocs returns the highest allocs/op across samples.
func worstAllocs(samples []metrics) float64 {
	worst := samples[0].AllocsOp
	for _, s := range samples[1:] {
		if s.AllocsOp > worst {
			worst = s.AllocsOp
		}
	}
	return worst
}

// medianNs returns the median ns/op across samples (lower middle for even
// counts, so a 2-sample run gates on the faster, less noisy one).
func medianNs(samples []metrics) float64 {
	ns := make([]float64, len(samples))
	for i, s := range samples {
		ns[i] = s.NsOp
	}
	sort.Float64s(ns)
	return ns[(len(ns)-1)/2]
}

// worstB returns the highest B/op across samples.
func worstB(samples []metrics) float64 {
	worst := samples[0].BOp
	for _, s := range samples[1:] {
		if s.BOp > worst {
			worst = s.BOp
		}
	}
	return worst
}

// updateBaseline rewrites the baseline file's headline after-numbers from
// the parsed bench samples, reduced exactly as the gate reduces them
// (median ns/op, worst B/op and allocs/op). Every headline benchmark must
// have samples — re-baselining from a partial run would silently unpin the
// missing ones. All other JSON content (before-numbers, notes, unknown
// fields) round-trips untouched via RawMessage.
func updateBaseline(path string, raw []byte, got map[string][]metrics) error {
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var headline map[string]map[string]json.RawMessage
	if err := json.Unmarshal(doc["headline"], &headline); err != nil {
		return fmt.Errorf("%s headline: %w", path, err)
	}
	for name, entry := range headline {
		samples := got[name]
		if len(samples) == 0 {
			return fmt.Errorf("cannot update: headline %s missing from bench output", name)
		}
		after, err := json.Marshal(metrics{
			NsOp:     medianNs(samples),
			BOp:      worstB(samples),
			AllocsOp: worstAllocs(samples),
		})
		if err != nil {
			return err
		}
		entry["after"] = after
		fmt.Printf("update %s: after = %s\n", name, after)
	}
	enc, err := json.Marshal(headline)
	if err != nil {
		return err
	}
	doc["headline"] = enc
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func run() error {
	basePath := flag.String("baseline", "BENCH_pr6.json", "baseline JSON with a headline section")
	benchPath := flag.String("bench", "bench.txt", "captured `go test -bench -benchmem` output")
	tolerance := flag.Float64("tolerance", 0.05, "allowed fractional allocs/op regression over the baseline")
	nsTolerance := flag.Float64("ns-tolerance", 0.15, "allowed fractional ns/op drift around the baseline (median across reps, both directions); negative disables")
	update := flag.Bool("update", false, "rewrite the baseline's headline after-numbers from the bench output instead of gating")
	flag.Parse()
	if *tolerance < 0 {
		return fmt.Errorf("-tolerance %v is negative", *tolerance)
	}

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", *basePath, err)
	}
	if len(base.Headline) == 0 {
		return fmt.Errorf("%s has no headline benchmarks", *basePath)
	}
	got, err := parseBench(*benchPath)
	if err != nil {
		return err
	}
	if *update {
		return updateBaseline(*basePath, raw, got)
	}

	failed := false
	names := make([]string, 0, len(base.Headline))
	for name := range base.Headline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.Headline[name].After
		samples, ok := got[name]
		if !ok || len(samples) == 0 {
			fmt.Printf("FAIL %s: missing from %s (headline benchmarks must run)\n", name, *benchPath)
			failed = true
			continue
		}

		allocs := worstAllocs(samples)
		allocsLimit := want.AllocsOp * (1 + *tolerance)
		allocsDelta := 100 * (allocs - want.AllocsOp) / want.AllocsOp
		status := "ok  "
		if allocs > allocsLimit {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %s: %.0f allocs/op vs baseline %.0f (%+.1f%%, limit +%.0f%%)\n",
			status, name, allocs, want.AllocsOp, allocsDelta, 100**tolerance)

		if *nsTolerance >= 0 && want.NsOp > 0 {
			ns := medianNs(samples)
			nsDelta := 100 * (ns - want.NsOp) / want.NsOp
			status = "ok  "
			switch {
			case ns > want.NsOp*(1+*nsTolerance):
				status = "FAIL"
				failed = true
			case ns < want.NsOp*(1-*nsTolerance):
				// Outside the band on the fast side: the baseline no longer
				// describes the code and must be re-recorded deliberately.
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%s %s: median %.0f ns/op over %d reps vs baseline %.0f (%+.1f%%, band ±%.0f%%)\n",
				status, name, ns, len(samples), want.NsOp, nsDelta, 100**nsTolerance)
		}
	}
	if failed {
		return fmt.Errorf("benchmark regression against %s (PR %d baseline)", *basePath, base.PR)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}
