// Command benchcheck is the CI benchmark-regression gate: it parses `go
// test -bench` output and fails when a benchmark's allocs/op regresses
// beyond a tolerance against the recorded baseline (BENCH_pr3.json).
//
// Allocation counts — unlike ns/op — are deterministic for a fixed
// -benchtime iteration count, so they gate reliably on shared CI runners
// where timing noise would make a ns/op gate flap. ns/op and B/op are
// still reported for context, but only allocs/op can fail the build.
//
//	go test -run=NoTests -bench='Fig01|Fig07' -benchtime=3x -benchmem . | tee bench.txt
//	go run ./cmd/benchcheck -baseline BENCH_pr3.json -bench bench.txt
//
// Every benchmark named in the baseline's "headline" section must appear
// in the bench output; a missing headline benchmark fails the gate (a
// deleted or renamed benchmark must update the baseline deliberately).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baseline mirrors the parts of BENCH_pr3.json the gate reads.
type baseline struct {
	PR       int                      `json:"pr"`
	Headline map[string]headlineEntry `json:"headline"`
}

type headlineEntry struct {
	After metrics `json:"after"`
}

type metrics struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"B_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// benchLine matches one `go test -bench -benchmem` result line, e.g.
//
//	BenchmarkFig01InflatedSubscription-4  3  103294204 ns/op  7157898 B/op  177771 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op\s+(\d+) B/op\s+(\d+) allocs/op`)

// parseBench extracts per-benchmark metrics from -bench output. When a
// benchmark appears more than once (several packages, -count>1) the worst
// allocs/op wins — a gate must not pass on the luckiest sample.
func parseBench(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]metrics)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		b, _ := strconv.ParseFloat(m[3], 64)
		allocs, _ := strconv.ParseFloat(m[4], 64)
		got := metrics{NsOp: ns, BOp: b, AllocsOp: allocs}
		if prev, ok := out[m[1]]; !ok || got.AllocsOp > prev.AllocsOp {
			out[m[1]] = got
		}
	}
	return out, sc.Err()
}

func run() error {
	basePath := flag.String("baseline", "BENCH_pr3.json", "baseline JSON with a headline section")
	benchPath := flag.String("bench", "bench.txt", "captured `go test -bench -benchmem` output")
	tolerance := flag.Float64("tolerance", 0.05, "allowed fractional allocs/op regression over the baseline")
	flag.Parse()
	if *tolerance < 0 {
		return fmt.Errorf("-tolerance %v is negative", *tolerance)
	}

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", *basePath, err)
	}
	if len(base.Headline) == 0 {
		return fmt.Errorf("%s has no headline benchmarks", *basePath)
	}
	got, err := parseBench(*benchPath)
	if err != nil {
		return err
	}

	failed := false
	for name, entry := range base.Headline {
		want := entry.After.AllocsOp
		limit := want * (1 + *tolerance)
		cur, ok := got[name]
		if !ok {
			fmt.Printf("FAIL %s: missing from %s (headline benchmarks must run)\n", name, *benchPath)
			failed = true
			continue
		}
		delta := 100 * (cur.AllocsOp - want) / want
		status := "ok  "
		if cur.AllocsOp > limit {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %s: %.0f allocs/op vs baseline %.0f (%+.1f%%, limit +%.0f%%) | %.0f ns/op, %.0f B/op\n",
			status, name, cur.AllocsOp, want, delta, 100**tolerance, cur.NsOp, cur.BOp)
	}
	if failed {
		return fmt.Errorf("allocation regression against %s (PR %d baseline)", *basePath, base.PR)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}
