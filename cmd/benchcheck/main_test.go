package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBench(t *testing.T) {
	path := writeTemp(t, "bench.txt", `
goos: linux
BenchmarkFig01InflatedSubscription-4   	       3	 103294204 ns/op	 7157898 B/op	  177771 allocs/op
BenchmarkFig07Protection-4             	       3	 113037779 ns/op	 9281269 B/op	  198085 allocs/op
BenchmarkFig07Protection-4             	       3	 113037779 ns/op	 9281269 B/op	  200000 allocs/op
PASS
ok  	deltasigma	2.1s
`)
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	if got["BenchmarkFig01InflatedSubscription"].AllocsOp != 177771 {
		t.Fatalf("Fig01 allocs = %v", got["BenchmarkFig01InflatedSubscription"])
	}
	// Duplicate entries keep the worst allocs/op.
	if got["BenchmarkFig07Protection"].AllocsOp != 200000 {
		t.Fatalf("Fig07 should keep the worst sample, got %v", got["BenchmarkFig07Protection"])
	}
	if got["BenchmarkFig01InflatedSubscription"].NsOp != 103294204 {
		t.Fatalf("Fig01 ns/op = %v", got["BenchmarkFig01InflatedSubscription"].NsOp)
	}
}

func TestParseBenchLineWithoutBenchmem(t *testing.T) {
	// Lines without -benchmem columns are skipped, not misparsed.
	path := writeTemp(t, "bench.txt", "BenchmarkX-4   10   1000 ns/op\n")
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %v from a line without alloc columns", got)
	}
}

// The real repository baseline must parse and carry headline entries —
// the gate's own config cannot silently rot.
func TestRepositoryBaselineIsGateable(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_pr3.json"))
	if err != nil {
		t.Fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if len(base.Headline) < 2 {
		t.Fatalf("baseline headline has %d entries, want >= 2", len(base.Headline))
	}
	for name, e := range base.Headline {
		if e.After.AllocsOp <= 0 {
			t.Fatalf("headline %s has no after.allocs_op", name)
		}
	}
}
