package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBench(t *testing.T) {
	path := writeTemp(t, "bench.txt", `
goos: linux
BenchmarkFig01InflatedSubscription-4   	       3	 103294204 ns/op	 7157898 B/op	  177771 allocs/op
BenchmarkFig07Protection-4             	       3	 113037779 ns/op	 9281269 B/op	  198085 allocs/op
BenchmarkFig07Protection-4             	       3	 113037779 ns/op	 9281269 B/op	  200000 allocs/op
PASS
ok  	deltasigma	2.1s
`)
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	// Two benchmarks, each under its bare name and its exact -4 name.
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmark keys, want 4: %v", len(got), got)
	}
	if n := len(got["BenchmarkFig07Protection"]); n != 2 {
		t.Fatalf("Fig07 should keep both samples, got %d", n)
	}
	if n := len(got["BenchmarkFig07Protection-4"]); n != 2 {
		t.Fatalf("Fig07's exact -cpu name should keep both samples, got %d", n)
	}
	if got["BenchmarkFig01InflatedSubscription"][0].AllocsOp != 177771 {
		t.Fatalf("Fig01 allocs = %v", got["BenchmarkFig01InflatedSubscription"])
	}
	// The allocation gate reduces repeated samples to the worst one.
	if w := worstAllocs(got["BenchmarkFig07Protection"]); w != 200000 {
		t.Fatalf("worstAllocs = %v, want the worst sample 200000", w)
	}
	if got["BenchmarkFig01InflatedSubscription"][0].NsOp != 103294204 {
		t.Fatalf("Fig01 ns/op = %v", got["BenchmarkFig01InflatedSubscription"][0].NsOp)
	}
}

func TestParseBenchLineWithoutBenchmem(t *testing.T) {
	// Lines without -benchmem columns are skipped, not misparsed.
	path := writeTemp(t, "bench.txt", "BenchmarkX-4   10   1000 ns/op\n")
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %v from a line without alloc columns", got)
	}
}

// A -cpu=1,4,8 run keeps each suffixed row separately gateable: the exact
// name pins one row, the bare name aggregates all of them (the suffixless
// -cpu=1 row included).
func TestParseBenchCPURows(t *testing.T) {
	path := writeTemp(t, "bench.txt", `
BenchmarkShardFanoutSharded     	       2	 900000 ns/op	 100 B/op	  10 allocs/op
BenchmarkShardFanoutSharded-4   	       2	 400000 ns/op	 100 B/op	  10 allocs/op
BenchmarkShardFanoutSharded-8   	       2	 300000 ns/op	 100 B/op	  10 allocs/op
BenchmarkShardFanoutSharded-8   	       2	 320000 ns/op	 100 B/op	  10 allocs/op
`)
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(got["BenchmarkShardFanoutSharded"]); n != 4 {
		t.Fatalf("bare name aggregates %d samples, want 4", n)
	}
	if n := len(got["BenchmarkShardFanoutSharded-8"]); n != 2 {
		t.Fatalf("exact -8 name has %d samples, want 2", n)
	}
	if ns := medianNs(got["BenchmarkShardFanoutSharded-8"]); ns != 300000 {
		t.Fatalf("-8 median = %v, want 300000 (the -8 rows only)", ns)
	}
	if _, ok := got["BenchmarkShardFanoutSharded-1"]; ok {
		t.Fatal("a -1 key must not exist: the cpu=1 row prints without a suffix")
	}
	// -update with a suffixed headline name picks the exact row.
	base := `{"headline": {"BenchmarkShardFanoutSharded-8": {"after": {"ns_op": 1, "B_op": 1, "allocs_op": 1}}}}`
	bpath := writeTemp(t, "BENCH.json", base)
	if err := updateBaseline(bpath, []byte(base), got); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(bpath)
	if err != nil {
		t.Fatal(err)
	}
	var reread baseline
	if err := json.Unmarshal(out, &reread); err != nil {
		t.Fatal(err)
	}
	if ns := reread.Headline["BenchmarkShardFanoutSharded-8"].After.NsOp; ns != 300000 {
		t.Fatalf("updated -8 ns/op = %v, want 300000", ns)
	}
}

func TestMedianNs(t *testing.T) {
	mk := func(ns ...float64) []metrics {
		out := make([]metrics, len(ns))
		for i, v := range ns {
			out[i].NsOp = v
		}
		return out
	}
	// Odd count: the middle sample; the outlier rep does not move the gate.
	if m := medianNs(mk(100, 900, 120)); m != 120 {
		t.Fatalf("median of 3 = %v, want 120", m)
	}
	// Even count: the lower middle (less noise-prone).
	if m := medianNs(mk(100, 200)); m != 100 {
		t.Fatalf("median of 2 = %v, want 100", m)
	}
	if m := medianNs(mk(500)); m != 500 {
		t.Fatalf("median of 1 = %v, want 500", m)
	}
}

func TestUpdateBaselineRewritesAfterInPlace(t *testing.T) {
	base := `{
  "pr": 6,
  "notes": ["hand-written context the update must not lose"],
  "env": {"goos": "linux"},
  "headline": {
    "BenchmarkFig01InflatedSubscription": {
      "before": {"ns_op": 1, "B_op": 2, "allocs_op": 3},
      "after": {"ns_op": 103294204, "B_op": 7157898, "allocs_op": 177771}
    },
    "BenchmarkFig07Protection": {
      "after": {"ns_op": 113037779, "B_op": 9281269, "allocs_op": 198085}
    }
  }
}`
	path := writeTemp(t, "BENCH.json", base)
	got := map[string][]metrics{
		"BenchmarkFig01InflatedSubscription": {
			{NsOp: 50, BOp: 500, AllocsOp: 5000},
			{NsOp: 40, BOp: 510, AllocsOp: 5001},
			{NsOp: 60, BOp: 505, AllocsOp: 4999},
		},
		"BenchmarkFig07Protection": {
			{NsOp: 70, BOp: 700, AllocsOp: 7000},
		},
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := updateBaseline(path, raw, got); err != nil {
		t.Fatal(err)
	}

	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("rewritten baseline is not valid JSON: %v", err)
	}
	// Unknown top-level fields survive the rewrite.
	for _, key := range []string{"pr", "notes", "env"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("field %q dropped by -update; have %s", key, out)
		}
	}
	var reread baseline
	if err := json.Unmarshal(out, &reread); err != nil {
		t.Fatal(err)
	}
	// After-numbers reduced exactly as the gate reduces: median ns/op,
	// worst B/op and allocs/op.
	fig01 := reread.Headline["BenchmarkFig01InflatedSubscription"].After
	if fig01.NsOp != 50 || fig01.BOp != 510 || fig01.AllocsOp != 5001 {
		t.Fatalf("Fig01 after = %+v, want median ns 50, worst B 510, worst allocs 5001", fig01)
	}
	// Per-entry fields beyond "after" survive too.
	var headline map[string]map[string]json.RawMessage
	if err := json.Unmarshal(doc["headline"], &headline); err != nil {
		t.Fatal(err)
	}
	if _, ok := headline["BenchmarkFig01InflatedSubscription"]["before"]; !ok {
		t.Fatal("before-numbers dropped by -update")
	}

	// The rewritten baseline must gate cleanly against the run that
	// produced it.
	if w := worstAllocs(got["BenchmarkFig07Protection"]); w != reread.Headline["BenchmarkFig07Protection"].After.AllocsOp {
		t.Fatalf("Fig07 allocs = %v, want %v", reread.Headline["BenchmarkFig07Protection"].After.AllocsOp, w)
	}
}

func TestUpdateBaselineRefusesPartialRun(t *testing.T) {
	base := `{"headline": {"BenchmarkMissing": {"after": {"ns_op": 1, "B_op": 1, "allocs_op": 1}}}}`
	path := writeTemp(t, "BENCH.json", base)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := updateBaseline(path, raw, map[string][]metrics{}); err == nil {
		t.Fatal("update from a run missing a headline benchmark must fail")
	}
	// And the file must be untouched on failure.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != base {
		t.Fatal("baseline modified despite failed update")
	}
}

// The real repository baseline must parse and carry headline entries with
// both gated metrics — the gate's own config cannot silently rot.
func TestRepositoryBaselineIsGateable(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_pr8.json"))
	if err != nil {
		t.Fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if len(base.Headline) < 3 {
		t.Fatalf("baseline headline has %d entries, want >= 3", len(base.Headline))
	}
	if _, ok := base.Headline["BenchmarkCohort1M"]; !ok {
		t.Fatal("baseline does not track BenchmarkCohort1M")
	}
	for name, e := range base.Headline {
		if e.After.AllocsOp <= 0 {
			t.Fatalf("headline %s has no after.allocs_op", name)
		}
		if e.After.NsOp <= 0 {
			t.Fatalf("headline %s has no after.ns_op", name)
		}
	}
}
