// Command figures regenerates every figure of the paper's evaluation (§5):
// Figures 1, 7, 8(a)-(h) and 9(a)-(b). For each it writes a gnuplot-style
// .dat file under -out and prints a summary, so EXPERIMENTS.md can record
// paper-vs-measured values.
//
//	go run ./cmd/figures            # full paper-length runs
//	go run ./cmd/figures -scale 0.3 # quicker, shortened runs
//	go run ./cmd/figures -only fig7
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"deltasigma/internal/scenario"
)

func main() {
	scale := flag.Float64("scale", 1.0, "duration scale factor (1 = paper length)")
	seed := flag.Uint64("seed", 2003, "experiment seed")
	out := flag.String("out", "results", "output directory for .dat files")
	only := flag.String("only", "", "comma-separated figure names (e.g. fig1,fig9a)")
	flag.Parse()

	opt := scenario.Options{Scale: *scale, Seed: *seed}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	figs := []struct {
		name string
		run  func(scenario.Options) *scenario.Result
	}{
		{"fig1", scenario.Fig1},
		{"fig7", scenario.Fig7},
		{"fig8a", scenario.Fig8a},
		{"fig8b", scenario.Fig8b},
		{"fig8c", scenario.Fig8c},
		{"fig8d", scenario.Fig8d},
		{"fig8e", scenario.Fig8e},
		{"fig8f", scenario.Fig8f},
		{"fig8g", scenario.Fig8g},
		{"fig8h", scenario.Fig8h},
		{"fig9a", scenario.Fig9a},
		{"fig9b", scenario.Fig9b},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}

	for _, f := range figs {
		if len(want) > 0 && !want[f.name] {
			continue
		}
		res := f.run(opt)
		path := filepath.Join(*out, res.Name+".dat")
		if err := writeDat(path, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		summarize(res)
	}
}

func writeDat(path string, res *scenario.Result) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", res.Name, res.Title)
	for _, n := range res.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	for _, s := range res.Series {
		fmt.Fprintf(&b, "\n\n# series: %s\n# time(s)  rate(Kbps)\n", s.Label)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%g %g\n", p.T, p.Kbps)
		}
	}
	for _, c := range res.Curves {
		fmt.Fprintf(&b, "\n\n# curve: %s\n# x  y\n", c.Label)
		for _, p := range c.Points {
			fmt.Fprintf(&b, "%g %g\n", p.X, p.Y)
		}
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func summarize(res *scenario.Result) {
	fmt.Printf("== %s: %s\n", res.Name, res.Title)
	for _, n := range res.Notes {
		fmt.Printf("   note: %s\n", n)
	}
	for _, s := range res.Series {
		if len(s.Points) == 0 {
			continue
		}
		span := s.Points[len(s.Points)-1].T
		fmt.Printf("   %-12s first-half avg %7.1f Kbps, second-half avg %7.1f Kbps\n",
			s.Label,
			scenario.SeriesAvg(s, span*0.1, span*0.5),
			scenario.SeriesAvg(s, span*0.55, span))
	}
	for _, c := range res.Curves {
		if len(c.Points) == 0 {
			continue
		}
		fmt.Printf("   %-24s", c.Label)
		for _, p := range c.Points {
			fmt.Printf(" (%g, %.2f)", p.X, p.Y)
		}
		fmt.Println()
	}
	fmt.Println()
}
